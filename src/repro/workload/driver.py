"""Workload drivers: a serial reference path and a sharded executor.

Two execution paths drive generated sessions through the serving
layer's protocol boundary (a per-shard
:class:`~repro.api.dispatcher.Dispatcher` over a private
:class:`~repro.serve.service.RwsService`) and the browser engine
(:class:`~repro.browser.engine.Browser`):

* the **serial reference path** (:func:`run_serial`) executes every
  event individually through the full-fidelity APIs (one
  :class:`~repro.api.envelopes.QueryRequest` dispatch per decision, a
  latency sample per decision) — the readable, obviously-correct
  baseline;
* the **sharded fast path** (:func:`run_sharded`) partitions users into
  contiguous shards, resolves hosts through a shard-local table (the
  way Chrome's renderer resolves origin → site before consulting the
  list), buffers a few sessions' site pairs, and answers them with one
  ``resolved`` :class:`~repro.api.envelopes.BatchQueryRequest`
  dispatch per buffer — no per-decision round-trip, no verdict
  objects, one latency sample per flush — then merges shard metrics.
  Shards run in worker processes (real parallelism on multi-core
  hosts) or threads; on a single core the fast path still wins because
  each decision does strictly less work.

Both paths produce **identical decision outcomes**: the run digest —
an order- and partition-independent fold of every per-user outcome
stream (see :mod:`repro.workload.metrics`) — is bit-identical for a
given seed across runs, shard counts, and the two paths, which the
tier-1 suite asserts.  Timing figures (decisions/sec, percentiles) are
the only non-reproducible outputs.

Mid-flight list updates (the ``list-update`` scenario) key off the
*global* user index, not shard progress: users below the cutoff are
served the old snapshot, users at or above it the new one, so the
outcome stream stays partition-independent.  Each shard also replays
the published delta onto a simulated v1 client and verifies the
patched copy's membership hash — the component-updater contract under
load.

**Replicated execution** (``scenario.replicas > 0``, or
:func:`replicated`): each shard dispatches through a
:class:`~repro.cluster.Router` over a replica set instead of a bare
service.  The router's logical clock is the *global* user index, and a
mid-flight publish is broadcast stamped with the global cutoff, so
replica ``i`` converges exactly at ``cutoff + (i + 1) * replica_lag``
regardless of how users were partitioned.  With ``replica_lag == 0``
every replica converges inside the publish and the outcome digest is
bit-identical to single-service execution; with a positive lag the
``rendezvous`` policy keeps routing a function of query content alone,
so the stale reads — observable in the digest — are still
deterministic across shard counts and executors (the fast path flushes
its batch buffer before any replica transition, so buffered decisions
are answered by the epochs their users actually saw).
"""

from __future__ import annotations

import dataclasses
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.api.dispatcher import Dispatcher, RequestCounter
from repro.api.envelopes import (
    BatchQueryRequest,
    BatchQueryResponse,
    ErrorCode,
    QueryRequest,
    QueryResponse,
)
from repro.browser.engine import Browser
from repro.browser.policy import BROWSER_POLICIES
from repro.chaos.plan import chaos_plan
from repro.chaos.router import ChaosRouter
from repro.cluster.router import Router
from repro.obs.trace import NULL_TRACER, Tracer, TraceSummary
from repro.psl.lookup import DomainError
from repro.psl import default_psl
from repro.rws.model import RwsList
from repro.serve.epoch import Epoch
from repro.serve.service import RwsService
from repro.serve.snapshot import SnapshotStore, apply_delta, membership_hash
from repro.workload.generator import Session, SessionGenerator, SiteUniverse
from repro.workload.metrics import (
    WorkloadMetrics,
    combine_digests,
    digest_hex,
    user_digest,
)
from repro.workload.scenarios import LIST_PROFILES, Scenario, get_scenario

if TYPE_CHECKING:  # import cycle guard: obs.registry imports this package
    from repro.obs.registry import MetricsRegistry

#: Sampling stride for fast-path rSA latency timing (one in N).
_SAMPLE_STRIDE = 32

#: Sessions buffered per fast-path batch dispatch: large enough to
#: amortise the envelope and stats fold across a few hundred pairs,
#: small enough that a buffer never spans a mid-flight list update.
_FLUSH_SESSIONS = 8


@dataclass(frozen=True)
class ShardTask:
    """One shard's picklable work order.

    Attributes:
        scenario: The traffic shape (pure data, travels to workers).
        seed: The run seed.
        user_start: First user id in this shard (inclusive).
        user_end: One past the last user id.
        total_users: The whole run's user count (mid-flight update
            cutoffs are computed against this, not the shard size).
        reference: True for the full-fidelity serial path.
        trace: Attach a deterministic per-request tracer.  Tracing
            forces full-fidelity execution (the fast path's batch
            flush boundaries depend on the partition, which would make
            span streams shard-dependent), so the shard-merged trace
            digest is bit-identical across shard counts and executors.
        transport: ``inproc`` (dispatch in-process, the default) or
            ``tcp`` (dispatch through a shard-private loopback
            :class:`~repro.net.server.RwsTcpServer` and a pooled
            :class:`~repro.net.client.TcpApiClient`).  The TCP hop is
            invisible to outcomes — the server runs a single dispatch
            worker over the same backend and the same request-counter
            middleware, so the outcome digest is bit-identical to
            in-process execution.  Mid-flight publishes still go
            straight to the service/router (the component-updater
            side, not client traffic).  ``transport="tcp"`` with
            ``trace=True`` is refused: socket scheduling would make
            span streams non-deterministic.
        encoded: The profile's initial list as a binary-encoded epoch
            (:mod:`repro.serve.epochfmt`).  When set, the shard's
            service adopts the buffer in O(size) instead of building
            the list and recompiling the index — the instant fan-out
            path.  ``None`` restores the per-shard publish (the
            reference for digest-equality tests).  Outcomes are
            bit-identical either way.
    """

    scenario: Scenario
    seed: int
    user_start: int
    user_end: int
    total_users: int
    reference: bool
    trace: bool = False
    transport: str = "inproc"
    encoded: bytes | None = None


@dataclass
class WorkloadResult:
    """The merged outcome of one workload run.

    The digest and all decision counts (rsa/rsa-for/queries, grants,
    denies, related hits) are deterministic for a given
    (scenario, users, seed) triple — across runs, shard counts, and
    driver paths.  Wall-clock figures are not, and per-shard
    implementation counters (resolver hits/misses, ``list_updates`` /
    ``delta_applied``, which count once per shard that crosses the
    update cutoff) vary with the partition.
    """

    scenario: Scenario
    users: int
    shards: int
    executor: str
    seed: int
    metrics: WorkloadMetrics
    digest: int
    wall_seconds: float
    snapshot_version: int
    #: ``inproc`` or ``tcp`` — how shard dispatches reached the backend.
    transport: str = "inproc"
    #: The shard-merged unified metrics registry (counters add, gauges
    #: keep the max, histograms vector-add); its deterministic-subset
    #: digest is partition-independent like the outcome digest.
    registry: MetricsRegistry | None = None
    #: The shard-merged trace summary (``trace=True`` runs only).
    trace: TraceSummary | None = None

    @property
    def decisions(self) -> int:
        """Total decisions made (rSA + rSAFor + membership queries)."""
        return self.metrics.decisions

    @property
    def decisions_per_sec(self) -> float:
        """End-to-end throughput (generation + execution + merge)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.decisions / self.wall_seconds

    @property
    def digest_hex(self) -> str:
        """The run digest as 64 hex characters."""
        return digest_hex(self.digest)

    def report_lines(self) -> list[str]:
        """Human-readable report; deterministic lines first."""
        counters = self.metrics.counters
        lines = [
            f"scenario {self.scenario.name}: {self.scenario.description}",
            f"users {self.users}  shards {self.shards} ({self.executor})  "
            f"seed {self.seed}  snapshot v{self.snapshot_version}"
            + (f"  transport {self.transport}"
               if self.transport != "inproc" else ""),
            f"decisions {self.decisions}  "
            f"(rsa {counters.get('rsa_calls', 0)}, "
            f"rsa-for {counters.get('rsa_for_calls', 0)}, "
            f"queries {counters.get('queries', 0)})",
            f"grants {counters.get('rsa_granted', 0)}  "
            f"denies {counters.get('rsa_denied', 0)}  "
            f"related {counters.get('related_hits', 0)}",
            f"digest {self.digest_hex}",
        ]
        if self.registry is not None:
            lines.append(f"metrics digest {self.registry.digest_hex()}")
        if self.trace is not None:
            lines.append(f"trace digest {self.trace.digest_hex}  "
                         f"({self.trace.span_count} spans over "
                         f"{self.trace.request_count} requests)")
        if counters.get("list_updates"):
            # One logical update; each shard at/above the cutoff
            # republishes into its private service and re-verifies.
            lines.append(
                f"mid-flight list update applied in "
                f"{counters['list_updates']} shard(s); delta clients "
                f"converged in {counters.get('delta_applied', 0)}"
            )
        lines.append(
            f"throughput {self.decisions_per_sec:,.0f} decisions/sec "
            f"({self.wall_seconds:.2f}s wall)"
        )
        for name in sorted(self.metrics.histograms):
            summary = self.metrics.histograms[name].summary()
            lines.append(
                f"latency {name}: p50 {summary['p50_ns'] / 1e3:.1f}us  "
                f"p95 {summary['p95_ns'] / 1e3:.1f}us  "
                f"p99 {summary['p99_ns'] / 1e3:.1f}us  "
                f"({int(summary['count'])} samples)"
            )
        return lines


# -- shard execution ----------------------------------------------------------


class _ShardState:
    """Mutable per-shard context threaded through session execution."""

    __slots__ = ("scenario", "service", "router", "backend", "dispatcher",
                 "api_counter", "epoch", "psl", "metrics", "digests",
                 "resolver_cache", "policy", "rsa_seen", "resolver_hits",
                 "resolver_misses", "resolver_bound", "pending_users",
                 "pending_pairs")

    def __init__(self, scenario: Scenario, service: RwsService,
                 router: Router | None = None, tracer=NULL_TRACER):
        self.scenario = scenario
        self.service = service
        #: The replica cluster front-end in replicated execution mode,
        #: None for single-service runs.
        self.router = router
        self.backend: RwsService | Router = \
            router if router is not None else service
        self.api_counter = RequestCounter()
        self.dispatcher = Dispatcher(self.backend,
                                     middlewares=(self.api_counter,),
                                     tracer=tracer)
        # Browsers adopt the primary's epoch handle: the client-side
        # rSA decisions follow the publish instant (the primary), while
        # the serving-layer queries may lag behind on stale replicas.
        self.epoch = service.epoch
        self.psl = service.psl
        self.metrics = WorkloadMetrics()
        self.digests: list[int] = []
        self.resolver_cache: dict[str, str | None] = {}
        self.policy = BROWSER_POLICIES["chrome-rws"]
        self.rsa_seen = 0
        self.resolver_hits = 0
        self.resolver_misses = 0
        self.resolver_bound = max(0, scenario.resolver_cache_size)
        # Fast-path batch buffer: (user_id, rsa tokens, pair count) per
        # session, plus the flat resolved site pairs awaiting dispatch.
        self.pending_users: list[tuple[int, list[str], int]] = []
        self.pending_pairs: list[tuple[str | None, str | None]] = []

    def resolve_local(self, host: str) -> str | None:
        """Shard-local host resolution (the fast path's resolver).

        The client side of the protocol: hosts resolve here before the
        resulting sites are dispatched as a ``resolved`` batch query,
        the way Chrome's renderer resolves origin → site before
        consulting the list.
        Honours the scenario's ``resolver_cache_size``: 0 (cold-cache)
        resolves every host through the PSL, a positive bound evicts —
        FIFO rather than the service LRU's move-to-recent, which keeps
        the hit path to one dict probe (hit/miss counts near the bound
        may therefore differ slightly from the reference path).
        Hit/miss counts live in plain attributes (folded into the
        metrics when the shard finishes): this is the hottest call in
        the fast path and a dict-counter update per resolution costs
        more than the resolution itself.
        """
        cache = self.resolver_cache
        if host in cache:
            self.resolver_hits += 1
            return cache[host]
        self.resolver_misses += 1
        try:
            site = self.psl.etld_plus_one(host)
        except DomainError:
            site = None
        if self.resolver_bound > 0:
            if len(cache) >= self.resolver_bound:
                cache.pop(next(iter(cache)))
            cache[host] = site
        return site

    def resolve_local_many(self, hosts: list[str]) -> list[str | None]:
        """Batch form of :meth:`resolve_local` for whole-session buffers.

        Probes the shard-local table per host, then resolves every cold
        host through **one** bulk PSL call
        (:meth:`~repro.psl.lookup.PublicSuffixList.etld_plus_one_many`)
        instead of a walk per host.  Accounting mirrors the sequential
        loop: repeats of a cold host within the batch count as the hits
        they would have been once the first occurrence had been cached
        — except with caching disabled (cold-cache scenarios), where
        every occurrence is its own miss, exactly like
        :meth:`resolve_local`.
        """
        cache = self.resolver_cache
        bound = self.resolver_bound
        sites: list[str | None] = [None] * len(hosts)
        pending: dict[str, list[int]] = {}
        hits = misses = 0
        for i, host in enumerate(hosts):
            if host in cache:
                hits += 1
                sites[i] = cache[host]
                continue
            positions = pending.get(host)
            if positions is None:
                pending[host] = [i]
                misses += 1
            else:
                positions.append(i)
                if bound > 0:
                    hits += 1
                else:
                    misses += 1
        if pending:
            values = self.psl.etld_plus_one_many(list(pending))
            for (host, positions), site in zip(pending.items(), values):
                for position in positions:
                    sites[position] = site
                if bound > 0:
                    if len(cache) >= bound:
                        cache.pop(next(iter(cache)))
                    cache[host] = site
        self.resolver_hits += hits
        self.resolver_misses += misses
        return sites


def _browse_session(state: _ShardState, session: Session, *,
                    reference: bool) -> tuple[list[str],
                                              list[tuple[str, str]]]:
    """Run a session's browser-engine traffic.

    Returns the rSA outcome tokens (in event order) and the
    (top_host, embed_host) pairs for the serving-layer queries.
    """
    metrics = state.metrics
    rsa_tokens: list[str] = []
    pairs: list[tuple[str, str]] = []
    browser = Browser(policy=state.policy, rws_list=RwsList(),
                      psl=state.psl)
    browser.adopt_epoch(state.epoch)
    for page_visit in session.pages:
        # One bulk PSL call per page load resolves the top-level host
        # and every embed's host together (the engine's natural
        # resolution batch).  The serving-layer query pairs still
        # carry the raw hosts, but browse-step resolutions now ride
        # the PSL layer instead of the per-path resolver, so the
        # reported resolver_hits/resolver_misses counters reflect
        # query-path traffic only (they no longer include the embed
        # warm-up the pre-batch code did); outcomes are unaffected.
        page, embed_sites = browser.visit_with_embeds(
            page_visit.top_host,
            [embed.host for embed in page_visit.embeds],
            interact=page_visit.interact)
        metrics.count("page_visits")
        for embed, embed_site in zip(page_visit.embeds, embed_sites):
            pairs.append((page_visit.top_host, embed.host))
            if embed_site is None:
                continue
            frame = page.embed(embed_site)
            state.rsa_seen += 1
            timed = reference or state.rsa_seen % _SAMPLE_STRIDE == 0
            started = time.perf_counter_ns() if timed else 0
            decision = browser.request_storage_access(
                frame, user_gesture=embed.user_gesture)
            if timed:
                metrics.record_latency("rsa",
                                       time.perf_counter_ns() - started)
            metrics.count("rsa_calls")
            metrics.count("rsa_granted" if decision.granted
                          else "rsa_denied")
            rsa_tokens.append(decision.value)
        for host in page_visit.rsa_for_hosts:
            decision = browser.request_storage_access_for(page, host)
            metrics.count("rsa_for_calls")
            metrics.count("rsa_granted" if decision.granted
                          else "rsa_denied")
            rsa_tokens.append(f"for:{decision.value}")
    return rsa_tokens, pairs


def _query_pairs(session: Session) -> list[tuple[str, str]]:
    """The (top, embed) query pairs for a browserless (bulk) session."""
    return [(page.top_host, embed.host)
            for page in session.pages for embed in page.embeds]


def _execute_reference(state: _ShardState, session: Session) -> None:
    """Full-fidelity execution: one API dispatch per decision."""
    metrics = state.metrics
    if state.scenario.browser_traffic:
        rsa_tokens, pairs = _browse_session(state, session, reference=True)
    else:
        rsa_tokens, pairs = [], _query_pairs(session)
    dispatch = state.dispatcher.dispatch
    query_tokens: list[str] = []
    for top_host, embed_host in pairs:
        started = time.perf_counter_ns()
        response = dispatch(QueryRequest(top_host, embed_host))
        metrics.record_latency("query", time.perf_counter_ns() - started)
        metrics.count("queries")
        if type(response) is QueryResponse:
            related = response.verdict.related
        else:
            # Unresolvable hosts fold into the outcome stream as "not
            # related" (exactly how the pre-protocol verdicts encoded
            # them); any other error — INTERNAL, rate limiting — must
            # fail the shard loudly rather than silently skew digests.
            if response.error.code is not ErrorCode.UNRESOLVABLE_HOST:
                raise RuntimeError(
                    f"query dispatch failed for "
                    f"({top_host!r}, {embed_host!r}): "
                    f"{response.error.code.value}: "
                    f"{response.error.message}")
            related = False
        if related:
            metrics.count("related_hits")
        query_tokens.append("1" if related else "0")
    state.digests.append(
        user_digest(session.user_id, rsa_tokens + ["#"] + query_tokens))


def _execute_fast(state: _ShardState, session: Session) -> None:
    """Fast-path execution: buffer resolved site pairs, flush in batches.

    Hosts resolve through the shard-local table (as before the protocol
    rewiring — the client side of the renderer's origin → site step);
    the buffered sites flush through one ``resolved``
    :class:`BatchQueryRequest` dispatch every :data:`_FLUSH_SESSIONS`
    sessions (see :func:`_flush_fast`), which amortises the envelope
    and the service's stats fold across a few hundred decisions.
    """
    if state.scenario.browser_traffic:
        rsa_tokens, pairs = _browse_session(state, session, reference=False)
    else:
        rsa_tokens, pairs = [], _query_pairs(session)
    # Pre-resolve the whole session's hosts as one batch through the
    # shard table: cold hosts ride a single bulk PSL walk instead of
    # one resolver call per pair side.
    sites = state.resolve_local_many(
        [host for pair in pairs for host in pair])
    site_iter = iter(sites)
    state.pending_pairs.extend(zip(site_iter, site_iter))
    state.pending_users.append((session.user_id, rsa_tokens, len(pairs)))
    if len(state.pending_users) >= _FLUSH_SESSIONS:
        _flush_fast(state)


def _flush_fast(state: _ShardState) -> None:
    """Dispatch the fast path's buffered site pairs and fold outcomes.

    Per-user digests are reassembled from the batched verdict bits in
    buffer order, so they are bit-identical to per-session execution —
    the buffer never spans a mid-flight list update
    (:func:`_apply_mid_flight_update` flushes first) or a shard
    boundary, which keeps outcomes partition-independent.
    """
    if not state.pending_users:
        return
    metrics = state.metrics
    pairs = state.pending_pairs
    bits: list[bool] = []
    if pairs:
        started = time.perf_counter_ns()
        response = state.dispatcher.dispatch(
            BatchQueryRequest(pairs=pairs, detail=False, resolved=True))
        assert type(response) is BatchQueryResponse, response
        bits = response.related
        # One sample per flush: the per-decision mean over the batch.
        metrics.record_latency(
            "query", (time.perf_counter_ns() - started) // len(pairs))
        metrics.count("queries", len(pairs))
        hits = sum(bits)
        if hits:
            metrics.count("related_hits", hits)
    offset = 0
    for user_id, rsa_tokens, pair_count in state.pending_users:
        query_tokens = ["1" if bit else "0"
                        for bit in bits[offset:offset + pair_count]]
        offset += pair_count
        state.digests.append(
            user_digest(user_id, rsa_tokens + ["#"] + query_tokens))
    state.pending_users.clear()
    state.pending_pairs = []


def _apply_mid_flight_update(state: _ShardState, cutoff: int) -> None:
    """Publish the profile's next list version and verify delta catch-up.

    In replicated mode the publish goes through the router, stamped
    with the *global* cutoff as its logical publish clock: replica
    ``i`` then owes its catch-up at ``cutoff + lag_i`` no matter where
    this shard's user range starts, which is what keeps stale-replica
    staleness (and the digest) partition-independent.
    """
    # Buffered fast-path queries belong to pre-cutoff users: answer
    # them against the old snapshot before the index swaps.
    _flush_fast(state)
    build_v1, build_v2 = LIST_PROFILES[state.scenario.list_profile]
    assert build_v2 is not None
    base_version = state.service.current_snapshot.version \
        if state.service.current_snapshot else 0
    if state.router is not None:
        snapshot = state.router.publish(build_v2(), published_clock=cutoff)
        # The router decides what the cluster serves: under failover
        # the promoted replica's epoch (the dead primary never
        # adopts), under a canary rollback the *old* epoch.
        state.epoch = state.router.epoch
    else:
        snapshot = state.service.publish(build_v2())
        state.epoch = state.service.epoch
    state.metrics.count("list_updates")
    if snapshot.version == base_version:
        # A rolled-back canary publish: the cluster kept serving the
        # old version, so there is nothing for a delta client to
        # catch up to (the aborted candidate stays in store history).
        return
    # A v1 client catches up by delta; its patched copy must converge
    # on the served content hash (the component-updater contract).
    # Pinned to the *served* version: under a staged rollout the
    # store's latest may be a candidate the cluster never promoted.
    delta = state.service.delta_since(base_version, snapshot.version)
    patched = apply_delta(build_v1(), delta)
    if membership_hash(patched) == snapshot.content_hash:
        state.metrics.count("delta_applied")


def _shard_tcp_front(state: _ShardState):
    """A shard-private loopback TCP hop in front of the backend.

    Builds an :class:`~repro.net.server.RwsTcpServer` over the shard's
    backend — single dispatch worker, so request handling serialises
    exactly like in-process dispatch — sharing the shard's
    :class:`RequestCounter` middleware, then swaps a pooled
    :class:`~repro.net.client.TcpApiClient` in as
    ``state.dispatcher``.  Returns the (server harness, client) pair
    the shard must close when done.
    """
    # Imported lazily: repro.net imports repro.api, which this module
    # already feeds; keeping the import local also spares inproc runs
    # the asyncio machinery entirely.
    from repro.net.client import TcpApiClient
    from repro.net.server import RwsTcpServer, ServerThread

    harness = ServerThread(RwsTcpServer(
        dispatcher=Dispatcher(state.backend,
                              middlewares=(state.api_counter,)),
        workers=1,
    ))
    host, port = harness.start()
    client = TcpApiClient(host, port, pool_size=2)
    state.dispatcher = client
    return harness, client


def run_shard(task: ShardTask) -> dict:
    """Execute one shard; returns a picklable outcome dict.

    Top-level (not a closure) so process executors can pickle it.
    """
    scenario = task.scenario
    if task.transport not in ("inproc", "tcp"):
        raise ValueError(f"unknown transport {task.transport!r} "
                         "(known: inproc, tcp)")
    if task.transport == "tcp" and task.trace:
        raise ValueError("trace=True requires the inproc transport: "
                         "socket scheduling would make span streams "
                         "non-deterministic")
    started = time.perf_counter()
    build_v1, build_v2 = LIST_PROFILES[scenario.list_profile]
    service = RwsService(resolver_cache_size=scenario.resolver_cache_size)
    if task.encoded is not None:
        # O(size) spin-up: the shard serves the pre-encoded epoch's
        # array-backed index directly — no list build, no per-entry
        # index compile.  The lazy snapshot list materializes only if
        # something walks it (the site universe below does; the
        # serving hot path never would).
        snapshot = service.adopt_encoded(task.encoded)
        rws_list = snapshot.rws_list
    else:
        rws_list = build_v1()
        service.publish(rws_list)
    router = None
    if scenario.chaos is not None and scenario.replicas <= 0:
        raise ValueError(f"chaos plan {scenario.chaos!r} requires "
                         "replicas > 0")
    if scenario.replicas > 0:
        # Replicas boot from the already-published epoch; staggered
        # propagation lag (i + 1) * replica_lag applies to every
        # *subsequent* publish broadcast.
        lags = [(i + 1) * scenario.replica_lag
                for i in range(scenario.replicas)]
        if scenario.chaos is not None:
            # The fault plan scales against the whole run's clock
            # horizon and is identical in every shard — each shard
            # replays the same fault history as its private clock
            # passes the scheduled ticks.
            router = ChaosRouter(
                service, replicas=scenario.replicas,
                plan=chaos_plan(scenario.chaos, task.total_users,
                                scenario.replica_lag),
                lag=lags, policy=scenario.router_policy,
                resolver_cache_size=scenario.resolver_cache_size,
            )
        else:
            router = Router(
                service, replicas=scenario.replicas, lag=lags,
                policy=scenario.router_policy,
                resolver_cache_size=scenario.resolver_cache_size,
            )
    tracer = Tracer(seed=task.seed) if task.trace else NULL_TRACER
    if task.trace:
        if router is not None:
            router.set_tracer(tracer)  # propagates primary + replicas
        else:
            service.set_tracer(tracer)
    state = _ShardState(scenario, service, router, tracer)
    net_front = (_shard_tcp_front(state) if task.transport == "tcp"
                 else None)
    universe = SiteUniverse(rws_list, trackers=scenario.trackers,
                            outside_sites=scenario.outside_sites)
    generator = SessionGenerator(scenario, task.seed, universe)
    # Tracing forces the full-fidelity path: fast-path flush boundaries
    # depend on the partition, which would shard-skew the span stream.
    execute = (_execute_reference if task.reference or task.trace
               else _execute_fast)

    if scenario.warm_cache:
        for site in universe.member_sites:
            for host in (site, f"www.{site}", f"m.{site}"):
                if task.reference:
                    service.resolve_host(host)
                else:
                    state.resolve_local(host)
        state.metrics.count("warmup_resolutions",
                            3 * len(universe.member_sites))

    cutoff = None
    if scenario.update_at_fraction is not None and build_v2 is not None:
        cutoff = int(task.total_users * scenario.update_at_fraction)
    updated = False
    for user_id in range(task.user_start, task.user_end):
        if cutoff is not None and not updated and user_id >= cutoff:
            _apply_mid_flight_update(state, cutoff)
            updated = True
        if router is not None:
            # The cluster clock is the global user index.  Flush the
            # fast path's buffer before any replica transition so
            # buffered decisions are answered by the epochs their
            # users actually saw.
            if router.has_due(user_id):
                _flush_fast(state)
            router.advance(user_id)
        if task.trace:
            # The request index is the *global* user id, so the span
            # stream (and its digest) is partition-independent.
            with tracer.request(user_id):
                execute(state, generator.session(user_id))
        else:
            execute(state, generator.session(user_id))
    _flush_fast(state)  # drain the fast path's tail buffer

    # The reference path resolves inside the service (or its
    # replicas), the fast path in its shard-local table; fold both so
    # either driver reports its resolver traffic (the other side's
    # counters are zero).
    backend_stats = state.backend.stats
    state.metrics.count("resolver_hits",
                        backend_stats.resolver_hits + state.resolver_hits)
    state.metrics.count("resolver_misses",
                        backend_stats.resolver_misses
                        + state.resolver_misses)
    if router is not None:
        state.metrics.count(
            "replica_catch_ups",
            sum(replica.catch_ups for replica in router.replicas))
        state.metrics.count(
            "replica_deltas_applied",
            sum(replica.deltas_applied for replica in router.replicas))
        resyncs = sum(replica.resyncs for replica in router.replicas)
        if resyncs:
            state.metrics.count("replica_resyncs", resyncs)
    for op, count in sorted(state.api_counter.requests.items()):
        state.metrics.count(f"api_{op}_requests", count)
    # The shard's unified registry: decision counters (the
    # deterministic subset), the backend's serve/psl/queue/cluster
    # report, and the API middleware — merged upstream exactly like
    # digests.  Imported lazily: obs.registry imports this package's
    # metrics module, so a top-level import here would be circular.
    from repro.obs.registry import (
        MetricsRegistry,
        fold_api_counter,
        fold_stats_report,
        fold_workload_metrics,
    )

    registry = MetricsRegistry()
    fold_workload_metrics(registry, state.metrics)
    fold_stats_report(registry, state.backend.stats_report())
    fold_api_counter(registry, state.api_counter)
    if net_front is not None:
        from repro.obs.registry import fold_net_snapshot

        harness, client = net_front
        fold_net_snapshot(registry, harness.server.net_snapshot())
        fold_net_snapshot(registry, client.net_snapshot(),
                          namespace="net.client")
        client.close()
        harness.stop()
    # The version the cluster actually *serves*: the router's acting
    # epoch in replicated mode (under failover the dead primary stays
    # behind; under a canary rollback the old version keeps serving),
    # the service's otherwise.
    if router is not None:
        version = router.epoch.version
    else:
        snapshot = service.current_snapshot
        version = snapshot.version if snapshot else 0
    return {
        "users": task.user_end - task.user_start,
        "metrics": state.metrics.to_portable(),
        "registry": registry.to_portable(),
        "trace": tracer.summary().to_portable() if task.trace else None,
        "digest": combine_digests(state.digests),
        "wall_seconds": time.perf_counter() - started,
        "snapshot_version": version,
    }


# -- run orchestration --------------------------------------------------------


#: Per-process memo: list profile -> binary-encoded v1 epoch.  Encoded
#: once per driver process and handed to every shard; immutable bytes,
#: so fork-based process pools share the pages for free.
_PROFILE_BUFFERS: dict[str, bytes] = {}


def _profile_buffer(profile: str) -> bytes:
    """The binary-encoded initial epoch for a list profile (memoized)."""
    buf = _PROFILE_BUFFERS.get(profile)
    if buf is None:
        build_v1, _ = LIST_PROFILES[profile]
        store = SnapshotStore()
        snapshot = store.publish(build_v1())
        epoch = Epoch.compile(snapshot, default_psl())
        buf = epoch.to_buffer(include_psl=False)
        _PROFILE_BUFFERS[profile] = buf
    return buf


def _partition(users: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, ascending user-id ranges (empty ranges dropped)."""
    base, extra = divmod(users, shards)
    bounds: list[tuple[int, int]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        if size > 0:
            bounds.append((start, start + size))
        start += size
    return bounds


def _resolve_executor(executor: str, shards: int) -> str:
    if executor == "auto":
        if shards <= 1:
            return "inline"
        return "process" if (os.cpu_count() or 1) > 1 else "thread"
    if executor not in ("inline", "thread", "process"):
        raise ValueError(f"unknown executor {executor!r} "
                         "(known: auto, inline, thread, process)")
    return executor


def _merge(scenario: Scenario, users: int, shards: int, executor: str,
           seed: int, outcomes: list[dict], wall_seconds: float,
           transport: str = "inproc") -> WorkloadResult:
    from repro.obs.registry import MetricsRegistry  # cycle guard

    metrics = WorkloadMetrics()
    registry = MetricsRegistry()
    trace: TraceSummary | None = None
    digests: list[int] = []
    snapshot_version = 0
    for outcome in outcomes:
        metrics.merge(WorkloadMetrics.from_portable(outcome["metrics"]))
        registry.merge(MetricsRegistry.from_portable(outcome["registry"]))
        if outcome.get("trace") is not None:
            shard_trace = TraceSummary.from_portable(outcome["trace"])
            if trace is None:
                trace = shard_trace
            else:
                trace.merge(shard_trace)
        digests.append(outcome["digest"])
        snapshot_version = max(snapshot_version,
                               outcome["snapshot_version"])
    return WorkloadResult(
        scenario=scenario, users=users, shards=shards, executor=executor,
        seed=seed, metrics=metrics, digest=combine_digests(digests),
        wall_seconds=wall_seconds, snapshot_version=snapshot_version,
        transport=transport, registry=registry, trace=trace,
    )


def run_serial(scenario: Scenario | str, users: int, *,
               seed: int = 0, trace: bool = False,
               transport: str = "inproc",
               encoded_epoch: bool = True) -> WorkloadResult:
    """The serial driver: one shard, full-fidelity execution.

    ``encoded_epoch=False`` restores the per-shard list build +
    publish (the compiled reference for digest-equality tests).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    started = time.perf_counter()
    encoded = (_profile_buffer(scenario.list_profile)
               if encoded_epoch else None)
    outcomes = []
    if users > 0:
        outcomes.append(run_shard(ShardTask(
            scenario=scenario, seed=seed, user_start=0, user_end=users,
            total_users=users, reference=True, trace=trace,
            transport=transport, encoded=encoded,
        )))
    return _merge(scenario, users, 1, "serial", seed, outcomes,
                  time.perf_counter() - started, transport)


def run_sharded(scenario: Scenario | str, users: int, shards: int, *,
                seed: int = 0, executor: str = "auto",
                trace: bool = False,
                transport: str = "inproc",
                encoded_epoch: bool = True) -> WorkloadResult:
    """The sharded executor: partition users, run shards, merge.

    Args:
        scenario: Registry name or scenario object.
        users: Total simulated users across all shards.
        shards: Worker count (contiguous user ranges).
        seed: Run seed; outcomes are identical for any shard count.
        executor: ``process`` (default on multi-core), ``thread``,
            ``inline`` (run shards in-loop; useful for tests), or
            ``auto``.
        trace: Attach per-shard deterministic tracers (forces
            full-fidelity execution); summaries merge into
            :attr:`WorkloadResult.trace` with a digest bit-identical
            to the serial run's.
        transport: ``inproc`` or ``tcp`` — see
            :attr:`ShardTask.transport`.  Each shard gets its own
            loopback server/client pair, so process executors stay
            picklable (sockets are created inside the worker).
        encoded_epoch: Hand every shard the profile's binary-encoded
            epoch (encoded once in the driver) instead of having each
            shard rebuild the list and recompile its index.  ``False``
            restores the per-shard publish; outcomes are bit-identical
            either way.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    mode = _resolve_executor(executor, shards)
    started = time.perf_counter()
    encoded = (_profile_buffer(scenario.list_profile)
               if encoded_epoch else None)
    tasks = [
        ShardTask(scenario=scenario, seed=seed, user_start=start,
                  user_end=end, total_users=users, reference=False,
                  trace=trace, transport=transport, encoded=encoded)
        for start, end in _partition(users, shards)
    ]
    if len(tasks) <= 1:
        mode = "inline"  # no pool spun up: report what actually ran
    # Shards are independent and the pool drains its queue, so capping
    # workers at the core count bounds memory/scheduler churn for large
    # --shards values without changing any outcome.
    workers = min(len(tasks), os.cpu_count() or 1)
    if mode == "inline":
        outcomes = [run_shard(task) for task in tasks]
    elif mode == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(run_shard, tasks))
    else:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            outcomes = list(pool.map(run_shard, tasks))
    return _merge(scenario, users, shards, mode, seed, outcomes,
                  time.perf_counter() - started, transport)


def run_workload(scenario: Scenario | str, users: int, *, shards: int = 1,
                 seed: int = 0, executor: str = "auto",
                 trace: bool = False,
                 transport: str = "inproc",
                 encoded_epoch: bool = True) -> WorkloadResult:
    """Run a workload, serial for one shard, sharded otherwise."""
    if shards <= 1:
        return run_serial(scenario, users, seed=seed, trace=trace,
                          transport=transport,
                          encoded_epoch=encoded_epoch)
    return run_sharded(scenario, users, shards, seed=seed,
                       executor=executor, trace=trace,
                       transport=transport, encoded_epoch=encoded_epoch)


def replicated(scenario: Scenario | str, replicas: int, *, lag: int = 0,
               policy: str = "rendezvous") -> Scenario:
    """A copy of a scenario executing through a replica cluster.

    Args:
        scenario: Registry name or scenario object.
        replicas: Read-replica count behind the router (0 restores
            single-service execution).
        lag: Propagation-lag stagger in users (replica ``i`` converges
            ``(i + 1) * lag`` users after a mid-flight publish).
        policy: Router policy; keep ``rendezvous`` whenever ``lag > 0``
            so digests stay partition-independent.
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    return dataclasses.replace(scenario, replicas=max(0, replicas),
                               replica_lag=max(0, lag),
                               router_policy=policy)


def chaotic(scenario: Scenario | str, plan: str, *, replicas: int = 3,
            lag: int = 4, policy: str = "rendezvous") -> Scenario:
    """A copy of a scenario executing under a named chaos plan.

    Args:
        scenario: Registry name or scenario object.  Scenarios without
            a replica cluster get one (``replicas``/``lag``/``policy``
            apply); scenarios that already run replicated keep their
            own cluster shape.
        plan: A :data:`~repro.chaos.CHAOS_PLANS` name
            (``replica-churn``, ``failover``, ``lossy-replication``,
            ``canary-rollback``); validated here so a typo fails fast
            instead of inside a worker shard.
        replicas: Replica count applied when the scenario has none.
        lag: Propagation-lag stagger applied when the scenario has no
            cluster.
        policy: Router policy applied when the scenario has no
            cluster; keep ``rendezvous`` — chaos changes membership
            mid-run, and round-robin routing is arrival-order
            dependent.
    """
    from repro.chaos.plan import CHAOS_PLANS

    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    if plan not in CHAOS_PLANS:
        known = ", ".join(sorted(CHAOS_PLANS))
        raise KeyError(f"unknown chaos plan {plan!r} (known: {known})")
    if scenario.replicas > 0:
        return dataclasses.replace(scenario, chaos=plan)
    return dataclasses.replace(scenario, chaos=plan,
                               replicas=max(1, replicas),
                               replica_lag=max(0, lag),
                               router_policy=policy)
