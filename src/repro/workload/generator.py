"""Deterministic, seeded browsing-session generators.

The paper's subject is a *deployed* mechanism: every third-party
storage-access decision in Chrome is a membership lookup against the
RWS list, issued by real users browsing real pages.  This module
synthesizes that traffic reproducibly:

* site popularity is Zipf-distributed (web traffic is famously
  heavy-tailed), with the exponent as a scenario knob;
* each user is an independent session model — page visits, embedded
  third parties, ``requestStorageAccess`` / ``requestStorageAccessFor``
  calls — drawn from a per-user RNG seeded by ``(seed, scenario,
  user_id)`` only;
* the traffic mix (same-set members vs other-set members vs unlisted
  trackers, member vs outside top sites) is configurable per scenario.

Because every random draw for user *u* comes from *u*'s own RNG, the
session stream for a given seed is identical run to run **and**
independent of how users are partitioned across shards — the property
the sharded driver's merge correctness rests on.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterable, Iterator, TYPE_CHECKING

from repro.rws.model import RwsList, SiteRole

if TYPE_CHECKING:
    from repro.workload.scenarios import Scenario


@dataclass(frozen=True)
class EmbedCall:
    """One embedded third-party frame and its storage-access request.

    Attributes:
        host: The raw embedded host (may carry a ``www.``/``cdn.``
            prefix — the serving layer resolves it to a site).
        user_gesture: Whether the rSA call carries a user gesture
            (abusive traffic probes without one).
    """

    host: str
    user_gesture: bool


@dataclass(frozen=True)
class PageVisit:
    """One top-level navigation with its embedded traffic.

    Attributes:
        top_host: The raw top-level host navigated to.
        interact: Whether the user interacts with the page (the RWS
            grant ladder consults prior set interaction).
        embeds: Embedded third parties, in embed order.
        rsa_for_hosts: Hosts the top-level document calls
            ``requestStorageAccessFor`` on.
    """

    top_host: str
    interact: bool
    embeds: tuple[EmbedCall, ...]
    rsa_for_hosts: tuple[str, ...]


@dataclass(frozen=True)
class Session:
    """One user's browsing session (the unit of shard partitioning)."""

    user_id: int
    pages: tuple[PageVisit, ...]

    def event_count(self) -> int:
        """Total decision-producing events in the session."""
        return sum(len(p.embeds) + len(p.rsa_for_hosts) for p in self.pages)


class ZipfSampler:
    """Zipf-distributed sampling over a fixed pool of items.

    Item at rank *r* (1-based) has weight ``1 / r**exponent``; sampling
    is one uniform draw plus a bisect over the precomputed CDF.
    """

    def __init__(self, items: list[str], exponent: float):
        if not items:
            raise ValueError("cannot sample from an empty pool")
        self.items = list(items)
        weights = [1.0 / (rank ** exponent)
                   for rank in range(1, len(items) + 1)]
        self._cdf = list(accumulate(weights))
        self._total = self._cdf[-1]

    def sample(self, rng: random.Random) -> str:
        """One Zipf draw using the caller's RNG."""
        point = rng.random() * self._total
        return self.items[bisect_left(self._cdf, point)]


class SiteUniverse:
    """The deterministic site population traffic is drawn from.

    Built from an :class:`RwsList` plus synthetic non-member pools; all
    orderings derive from list order and index arithmetic, never from
    hashing or runtime state, so two processes given the same inputs
    build identical universes.

    Attributes:
        member_sites: Every RWS member domain, in list order.
        service_sites: Member domains with the service role.
        set_members: Map from member domain to its full set membership
            (primary first), for same-set embed choices.
        trackers: Synthetic unlisted third-party domains.
        outside_tops: Synthetic unlisted top-level sites.
    """

    def __init__(self, rws_list: RwsList, *, trackers: int,
                 outside_sites: int):
        self.member_sites: list[str] = []
        self.service_sites: list[str] = []
        self.set_members: dict[str, tuple[str, ...]] = {}
        seen: set[str] = set()
        for rws_set in rws_list:
            members = tuple(rws_set.members())
            for record in rws_set.member_records():
                if record.site in seen:
                    continue  # duplicate across sets: first wins
                seen.add(record.site)
                self.member_sites.append(record.site)
                self.set_members[record.site] = members
                if record.role is SiteRole.SERVICE:
                    self.service_sites.append(record.site)
        if not self.member_sites:
            raise ValueError("workload universe needs a non-empty RWS list")
        self.trackers = [f"tracker-{i:03d}.com" for i in range(max(1, trackers))]
        self.outside_tops = [f"longtail-{i:03d}.net"
                             for i in range(max(1, outside_sites))]

    def same_set_partner(self, site: str, rng: random.Random) -> str | None:
        """A *different* member of ``site``'s set, or None."""
        members = self.set_members.get(site)
        if members is None or len(members) < 2:
            return None
        partner = rng.choice(members)
        if partner == site:
            partner = members[(members.index(partner) + 1) % len(members)]
        return partner


def _dress_host(site: str, rng: random.Random) -> str:
    """A raw host for a site (real traffic arrives as full hostnames)."""
    roll = rng.random()
    if roll < 0.40:
        return f"www.{site}"
    if roll < 0.50:
        return f"m.{site}"
    return site


class SessionGenerator:
    """Seeded per-user session synthesis for one scenario.

    Args:
        scenario: The scenario whose knobs shape the traffic.
        seed: The run seed; combined with the scenario name and user id
            it fully determines every session.
        universe: The site population to draw from.
    """

    def __init__(self, scenario: Scenario, seed: int, universe: SiteUniverse):
        self.scenario = scenario
        self.seed = seed
        self.universe = universe
        self._member_tops = ZipfSampler(universe.member_sites,
                                        scenario.zipf_exponent)
        self._trackers = ZipfSampler(universe.trackers,
                                     scenario.zipf_exponent)
        self._outside_tops = ZipfSampler(universe.outside_tops,
                                         scenario.zipf_exponent)

    def _rng_for(self, user_id: int) -> random.Random:
        # String seeding hashes via sha512 inside random.Random — stable
        # across processes and PYTHONHASHSEED values.
        return random.Random(f"{self.seed}:{self.scenario.name}:{user_id}")

    def session(self, user_id: int) -> Session:
        """The (deterministic) session for one user."""
        scenario = self.scenario
        universe = self.universe
        rng = self._rng_for(user_id)
        pages: list[PageVisit] = []
        for _ in range(rng.randint(*scenario.pages_per_session)):
            if (scenario.service_top_fraction > 0.0 and universe.service_sites
                    and rng.random() < scenario.service_top_fraction):
                top_site = rng.choice(universe.service_sites)
            elif rng.random() < scenario.member_top_fraction:
                top_site = self._member_tops.sample(rng)
            else:
                top_site = self._outside_tops.sample(rng)
            interact = rng.random() < scenario.interact_fraction

            embeds: list[EmbedCall] = []
            for _ in range(rng.randint(*scenario.embeds_per_page)):
                embeds.append(EmbedCall(
                    host=_dress_host(self._embed_site(top_site, rng), rng),
                    user_gesture=(scenario.no_gesture_fraction <= 0.0
                                  or rng.random()
                                  >= scenario.no_gesture_fraction),
                ))

            rsa_for: tuple[str, ...] = ()
            if (scenario.rsa_for_fraction > 0.0
                    and rng.random() < scenario.rsa_for_fraction):
                partner = universe.same_set_partner(top_site, rng)
                if partner is not None:
                    rsa_for = (_dress_host(partner, rng),)

            pages.append(PageVisit(
                top_host=_dress_host(top_site, rng),
                interact=interact,
                embeds=tuple(embeds),
                rsa_for_hosts=rsa_for,
            ))
        return Session(user_id=user_id, pages=tuple(pages))

    def _embed_site(self, top_site: str, rng: random.Random) -> str:
        scenario = self.scenario
        roll = rng.random()
        if roll < scenario.mix_same_set:
            partner = self.universe.same_set_partner(top_site, rng)
            if partner is not None:
                return partner
        elif roll < scenario.mix_same_set + scenario.mix_other_set:
            top_members = self.universe.set_members.get(top_site)
            for _ in range(4):  # bounded retry, then fall through
                candidate = self._member_tops.sample(rng)
                members = self.universe.set_members[candidate]
                if top_members is None or members is not top_members:
                    return candidate
        return self._trackers.sample(rng)

    def sessions(self, user_ids: Iterable[int]) -> Iterator[Session]:
        """Lazily generate the sessions for a range of users."""
        for user_id in user_ids:
            yield self.session(user_id)
