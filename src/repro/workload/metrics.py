"""Workload metrics: throughput counters and mergeable latency histograms.

The sharded driver partitions users across workers, so every metric here
is designed around one requirement: *merge must lose nothing*.  Counters
are plain sums; latencies go into :class:`LatencyHistogram`, a
fixed-shape power-of-two-bucket histogram whose merge is element-wise
addition, so percentiles computed after a merge are identical no matter
how the traffic was partitioned.

Two different execution paths feed the histograms (see
:mod:`repro.workload.driver`): the serial reference path times every
decision individually, while the sharded fast path samples — it times
one decision batch per session and records the per-decision mean.  Both
land in the same buckets; the sharded percentiles are therefore
estimates over a sample, which is the standard load-generator trade
(timing every operation at full throughput perturbs the measurement).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Histogram shape: bucket ``i`` holds latencies whose nanosecond value
#: has bit_length ``i`` (i.e. the range ``[2**(i-1), 2**i)``), clamped
#: at the top.  48 buckets cover ~1 ns .. ~39 hours.
NUM_BUCKETS = 48


class LatencyHistogram:
    """A fixed-bucket nanosecond histogram with lossless merge.

    Buckets are powers of two, so resolution is a factor of two —
    coarse for single measurements, plenty for p50/p95/p99 over
    thousands of decisions, and the fixed shape makes shard merging a
    vector add.
    """

    __slots__ = ("counts", "total")

    def __init__(self, counts: list[int] | None = None):
        if counts is None:
            self.counts = [0] * NUM_BUCKETS
        else:
            if len(counts) != NUM_BUCKETS:
                raise ValueError(
                    f"histogram shape mismatch: {len(counts)} buckets, "
                    f"expected {NUM_BUCKETS}"
                )
            self.counts = list(counts)
        self.total = sum(self.counts)

    def record(self, ns: int) -> None:
        """Record one latency observation (nanoseconds, >= 0)."""
        index = ns.bit_length() if ns > 0 else 0
        if index >= NUM_BUCKETS:
            index = NUM_BUCKETS - 1
        self.counts[index] += 1
        self.total += 1

    def merge(self, other: LatencyHistogram) -> None:
        """Fold another histogram into this one (element-wise add)."""
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total

    def percentile(self, q: float) -> float:
        """The latency (ns) at quantile ``q`` in [0, 1].

        Returns the geometric midpoint of the bucket containing the
        q-th observation (0.0 for an empty histogram).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            return 0.0
        rank = max(1, round(q * self.total))
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if i == 0:
                    return 0.5
                # Bucket i covers [2**(i-1), 2**i): geometric midpoint.
                return float(2 ** (i - 1)) * (2 ** 0.5)
        return float(2 ** (NUM_BUCKETS - 1))  # pragma: no cover

    def summary(self) -> dict[str, float]:
        """p50/p95/p99 in nanoseconds, plus the observation count."""
        return {
            "count": float(self.total),
            "p50_ns": self.percentile(0.50),
            "p95_ns": self.percentile(0.95),
            "p99_ns": self.percentile(0.99),
        }


@dataclass
class WorkloadMetrics:
    """All counters and histograms for one run (or one shard of one).

    Attributes:
        counters: Monotonic event counts (decisions, grants, queries...).
        histograms: Latency histograms keyed by operation name
            (``"rsa"`` for storage-access decisions, ``"query"`` for
            service membership queries).
    """

    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, LatencyHistogram] = field(default_factory=dict)

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def record_latency(self, name: str, ns: int) -> None:
        """Record one latency observation under an operation name."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = LatencyHistogram()
        histogram.record(ns)

    def merge(self, other: WorkloadMetrics) -> None:
        """Fold a shard's metrics into this aggregate."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = LatencyHistogram()
            mine.merge(histogram)

    @property
    def decisions(self) -> int:
        """Total storage-access decisions made (the throughput unit)."""
        return (self.counters.get("rsa_calls", 0)
                + self.counters.get("rsa_for_calls", 0)
                + self.counters.get("queries", 0))

    # -- shard transport ------------------------------------------------------

    def to_portable(self) -> dict:
        """A picklable plain-data form (for process-shard transport)."""
        return {
            "counters": dict(self.counters),
            "histograms": {name: list(h.counts)
                           for name, h in self.histograms.items()},
        }

    @classmethod
    def from_portable(cls, data: dict) -> WorkloadMetrics:
        """Rebuild from :meth:`to_portable` output."""
        return cls(
            counters=dict(data["counters"]),
            histograms={name: LatencyHistogram(counts)
                        for name, counts in data["histograms"].items()},
        )


# -- outcome digests ----------------------------------------------------------
#
# Reproducibility is checked with a content digest over every decision
# outcome.  Each user's session folds to one sha256; the run digest is
# the XOR of all user digests, which makes it independent of execution
# order and of how users were partitioned into shards.


def user_digest(user_id: int, outcomes: list[str]) -> int:
    """One user's outcome stream folded to a 256-bit integer."""
    payload = f"{user_id}|" + "\x1f".join(outcomes)
    return int.from_bytes(hashlib.sha256(payload.encode("utf-8")).digest(),
                          "big")


def combine_digests(digests: list[int]) -> int:
    """Order-independent combination (XOR) of user/shard digests."""
    combined = 0
    for digest in digests:
        combined ^= digest
    return combined


def digest_hex(digest: int) -> str:
    """A digest integer rendered as 64 hex characters."""
    return f"{digest:064x}"
