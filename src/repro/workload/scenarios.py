"""Named workload scenarios: one dict entry per traffic shape.

A scenario is pure data (:class:`Scenario` is a frozen dataclass of
primitives, picklable across process shards).  Adding a workload means
adding an entry to :data:`SCENARIOS`, not writing driver code:

* ``steady`` — steady-state browsing over the served list;
* ``flash-crowd`` — traffic collapses onto a few hot sets (high Zipf
  exponent, short sessions, many embeds);
* ``list-update`` — a new list version is published mid-flight and
  clients catch up via :class:`~repro.serve.snapshot.SnapshotStore`
  deltas;
* ``abusive`` — probing traffic against an oversized "conglomerate"
  set: gestureless rSA calls, service sites as top-level, cross-set
  scraping (the paper's governance concern as a workload);
* ``stale-replica`` — the mid-flight publish served through a replica
  cluster whose members converge at staggered propagation lag, so
  stale reads (and eventual convergence) land in the outcome digest;
* ``replica-churn`` / ``failover`` / ``lossy-replication`` /
  ``canary-rollback`` — the stale-replica shape run under the matching
  seeded :data:`~repro.chaos.CHAOS_PLANS` fault plan (membership
  churn, primary failover, lossy broadcast delivery, staged-rollout
  rollback); every fault keys off the logical clock, so the digests
  stay reproducible while provably differing from the fault-free run;
* ``cold-cache`` / ``warm-cache`` — the resolver cache accounting
  disabled vs pre-warmed, bracketing the cache's contribution;
* ``bulk`` — a pure membership-decision firehose (no browser
  simulation), the throughput benchmark's workload;
* ``synthetic-bulk`` — the bulk firehose over the seeded synthetic
  generator list (:mod:`repro.data.synthetic`) with a mid-flight
  update, exercising the binary epoch fan-out path over generated
  content.

List contents come from named *profiles* (:data:`LIST_PROFILES`) so a
scenario can reference "the seed list plus an abusive set" or "the seed
list's next version" without carrying unpicklable objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.data import build_rws_list
from repro.data.synthetic import (
    build_small_synthetic_list,
    build_small_synthetic_list_v2,
)
from repro.rws.model import RelatedWebsiteSet, RwsList


@dataclass(frozen=True)
class Scenario:
    """One named traffic shape (all fields primitive and picklable).

    Attributes:
        name: Registry key and RNG-stream component.
        description: One line for ``--list-scenarios`` output.
        list_profile: Key into :data:`LIST_PROFILES` choosing the
            served list (and its mid-flight successor, if any).
        browser_traffic: When False, sessions skip the browser engine
            and only produce service membership queries (the ``bulk``
            firehose).
        pages_per_session: Inclusive (min, max) page visits per user.
        embeds_per_page: Inclusive (min, max) third-party embeds.
        member_top_fraction: Probability a page's top-level site is an
            RWS member (vs a synthetic outside site).
        mix_same_set: Probability an embed comes from the top site's own
            set (falls back to a tracker for non-member tops).
        mix_other_set: Probability an embed comes from a *different*
            set; the remainder are unlisted trackers.
        service_top_fraction: Probability the top-level site is a
            service-role member (RWS forbids granting those).
        rsa_for_fraction: Probability a page issues a top-level
            ``requestStorageAccessFor`` call.
        no_gesture_fraction: Probability an rSA call arrives without a
            user gesture (abuse probing).
        interact_fraction: Probability the user interacts with a page.
        zipf_exponent: Popularity skew for all site pools.
        trackers: Size of the synthetic unlisted third-party pool.
        outside_sites: Size of the synthetic non-member top-site pool.
        resolver_cache_size: The service's host-resolver accounting
            bound (0 counts every resolution as a miss — the
            cold-cache scenario).
        warm_cache: Pre-resolve every member host before traffic runs.
        update_at_fraction: When set, publish the profile's next list
            version once this fraction of all users has been served,
            and verify a delta-patched client converges.
        replicas: When > 0, serve through a
            :class:`~repro.cluster.Router` over this many read
            replicas instead of one service (the replicated execution
            mode).
        replica_lag: Propagation lag *stagger*, in users: replica
            ``i`` applies a mid-flight publish once
            ``(i + 1) * replica_lag`` further users have been served
            (0 converges every replica inside the publish).
        router_policy: Cluster routing policy.  ``rendezvous`` routes
            by query content and is therefore partition-independent —
            required for reproducible digests whenever
            ``replica_lag > 0``; ``round-robin`` routes by arrival
            order (digest-stable only while every replica serves the
            same epoch, i.e. at lag 0).
        chaos: When set, the name of a :data:`~repro.chaos.CHAOS_PLANS`
            fault plan: the cluster runs behind a
            :class:`~repro.chaos.ChaosRouter` executing that plan
            (requires ``replicas > 0``).  Faults are keyed to the
            logical clock and a seed, so chaos digests stay
            bit-identical across runs, shard counts, and executors —
            while provably differing from the fault-free scenario's.
    """

    name: str
    description: str
    list_profile: str = "seed"
    browser_traffic: bool = True
    pages_per_session: tuple[int, int] = (2, 4)
    embeds_per_page: tuple[int, int] = (1, 3)
    member_top_fraction: float = 0.6
    mix_same_set: float = 0.5
    mix_other_set: float = 0.2
    service_top_fraction: float = 0.0
    rsa_for_fraction: float = 0.10
    no_gesture_fraction: float = 0.05
    interact_fraction: float = 0.7
    zipf_exponent: float = 1.2
    trackers: int = 256
    outside_sites: int = 512
    resolver_cache_size: int = 4096
    warm_cache: bool = False
    update_at_fraction: float | None = None
    replicas: int = 0
    replica_lag: int = 0
    router_policy: str = "rendezvous"
    chaos: str | None = None


# -- list profiles ------------------------------------------------------------


def _seed_v2() -> RwsList:
    """The seed list's successor: one grown set, one new set."""
    rws_list = build_rws_list()
    first = rws_list.sets[0]
    first.associated.append("midflight-news.com")
    first.rationales["midflight-news.com"] = (
        "Same newsroom; added in the mid-flight list update."
    )
    rws_list.sets.append(RelatedWebsiteSet(
        primary="midflight.com",
        associated=["midflight-shop.com"],
        rationales={"midflight-shop.com": "Storefront of midflight.com."},
    ))
    return rws_list


def _abusive_list() -> RwsList:
    """The seed list plus an oversized 'conglomerate' set.

    The paper's governance analysis worries about sets that stretch
    "clear affiliation" to span dozens of loosely related properties;
    this profile serves one so abusive-probing traffic has a target.
    """
    rws_list = build_rws_list()
    associated = [f"conglomerate-brand{i:02d}.com" for i in range(40)]
    service = [f"conglomerate-cdn{i}.com" for i in range(5)]
    rws_list.sets.append(RelatedWebsiteSet(
        primary="conglomerate-hub.com",
        associated=associated,
        service=service,
        rationales={site: "Part of the conglomerate family."
                    for site in associated + service},
    ))
    return rws_list


def _abusive_list_v2() -> RwsList:
    """The abusive profile after governance removes the oversized set."""
    return build_rws_list()


#: Profile name -> (initial list builder, mid-flight successor builder).
#: The synthetic profile serves the small deterministic generator
#: fixture (:mod:`repro.data.synthetic`) — the same generator scales
#: to the million-domain lists the epoch cold-start bench loads.
LIST_PROFILES: dict[str, tuple[Callable[[], RwsList],
                               Callable[[], RwsList] | None]] = {
    "seed": (build_rws_list, _seed_v2),
    "abusive": (_abusive_list, _abusive_list_v2),
    "synthetic": (build_small_synthetic_list,
                  build_small_synthetic_list_v2),
}


# -- the registry -------------------------------------------------------------

SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario for scenario in (
        Scenario(
            name="steady",
            description="steady-state browsing over the served seed list",
        ),
        Scenario(
            name="flash-crowd",
            description="traffic collapses onto a few hot sets",
            zipf_exponent=2.2,
            member_top_fraction=0.92,
            pages_per_session=(1, 2),
            embeds_per_page=(3, 5),
            mix_same_set=0.7,
            mix_other_set=0.1,
        ),
        Scenario(
            name="list-update",
            description="new list version published mid-flight; "
                        "clients catch up by delta",
            update_at_fraction=0.5,
        ),
        Scenario(
            name="abusive",
            description="gestureless/service-top probing of an "
                        "oversized conglomerate set",
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            rsa_for_fraction=0.25,
        ),
        Scenario(
            name="takedown",
            description="governance removes the abusive set mid-flight; "
                        "probes keep coming",
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            rsa_for_fraction=0.25,
            update_at_fraction=0.5,
        ),
        Scenario(
            name="stale-replica",
            description="mid-flight takedown reaches replicas at "
                        "staggered lag; stale reads until convergence",
            # The takedown traffic shape: the mid-flight update
            # *removes* the conglomerate set, so a stale replica keeps
            # answering "related" for pairs a converged one denies —
            # the lag is visible in the outcome digest, not just in
            # counters.
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            rsa_for_fraction=0.25,
            update_at_fraction=0.5,
            replicas=3,
            replica_lag=4,
            router_policy="rendezvous",
        ),
        # The four chaos scenarios share the stale-replica traffic
        # shape (takedown probing through a lagged replica cluster) so
        # their digests are directly comparable to the fault-free run
        # — the difference in each digest is the injected fault alone.
        Scenario(
            name="replica-churn",
            description="takedown under replica leave/rejoin and a "
                        "mid-workload joiner",
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            # Near-uniform popularity: the oversized set's sites stay
            # hot, so takedown-affected verdicts land densely in
            # every fault's divergence window.
            zipf_exponent=0.5,
            rsa_for_fraction=0.25,
            update_at_fraction=0.5,
            replicas=3,
            replica_lag=16,
            router_policy="rendezvous",
            chaos="replica-churn",
        ),
        Scenario(
            name="failover",
            description="the primary fails before the takedown; an "
                        "elected replica publishes it",
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            # Near-uniform popularity: the oversized set's sites stay
            # hot, so takedown-affected verdicts land densely in
            # every fault's divergence window.
            zipf_exponent=0.5,
            rsa_for_fraction=0.25,
            update_at_fraction=0.5,
            replicas=3,
            replica_lag=16,
            router_policy="rendezvous",
            chaos="failover",
        ),
        Scenario(
            name="lossy-replication",
            description="takedown broadcast dropped/duplicated/"
                        "reordered; gap-detecting replicas resync",
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            # Near-uniform popularity: the oversized set's sites stay
            # hot, so takedown-affected verdicts land densely in
            # every fault's divergence window.
            zipf_exponent=0.5,
            rsa_for_fraction=0.25,
            update_at_fraction=0.5,
            replicas=3,
            replica_lag=4,
            router_policy="rendezvous",
            chaos="lossy-replication",
        ),
        Scenario(
            name="canary-rollback",
            description="the takedown stages through canaries; the "
                        "divergence probe rolls it back",
            list_profile="abusive",
            member_top_fraction=0.8,
            service_top_fraction=0.25,
            no_gesture_fraction=0.35,
            mix_same_set=0.6,
            mix_other_set=0.3,
            interact_fraction=0.2,
            # Near-uniform popularity: the oversized set's sites stay
            # hot, so takedown-affected verdicts land densely in
            # every fault's divergence window.
            zipf_exponent=0.5,
            rsa_for_fraction=0.25,
            update_at_fraction=0.5,
            replicas=4,
            replica_lag=4,
            router_policy="rendezvous",
            chaos="canary-rollback",
        ),
        Scenario(
            name="cold-cache",
            description="steady traffic with the host-resolver LRU disabled",
            resolver_cache_size=0,
        ),
        Scenario(
            name="warm-cache",
            description="steady traffic with the resolver pre-warmed",
            warm_cache=True,
        ),
        Scenario(
            name="bulk",
            description="pure membership-decision firehose "
                        "(no browser simulation)",
            browser_traffic=False,
            pages_per_session=(4, 8),
            embeds_per_page=(4, 8),
            rsa_for_fraction=0.0,
            no_gesture_fraction=0.0,
        ),
        Scenario(
            name="synthetic-bulk",
            description="membership firehose over the generated "
                        "synthetic list with a mid-flight update",
            list_profile="synthetic",
            browser_traffic=False,
            pages_per_session=(4, 8),
            embeds_per_page=(4, 8),
            rsa_for_fraction=0.0,
            no_gesture_fraction=0.0,
            update_at_fraction=0.5,
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by registry name.

    Raises:
        KeyError: With the known names, for unknown scenarios.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
