"""Shared fixtures.

The expensive artefacts (study run, governance simulation, synthetic
web, figure pipelines) are session-scoped: they are deterministic, so
sharing them across tests changes nothing but wall-clock time.
"""

from __future__ import annotations

import pytest

from repro.data import (
    build_category_database,
    build_rws_history,
    build_rws_list,
    build_site_catalog,
)
from repro.governance import simulate_governance
from repro.netsim import Client
from repro.psl import default_psl
from repro.survey import conduct_study
from repro.webgen import build_web_for_catalog


@pytest.fixture(scope="session")
def psl():
    return default_psl()


@pytest.fixture(scope="session")
def rws_list():
    return build_rws_list()


@pytest.fixture(scope="session")
def rws_history():
    return build_rws_history()


@pytest.fixture(scope="session")
def catalog():
    return build_site_catalog()


@pytest.fixture(scope="session")
def category_db(catalog):
    return build_category_database(catalog)


@pytest.fixture(scope="session")
def synthetic_web(catalog, rws_list):
    return build_web_for_catalog(catalog, rws_list, seed=7)


@pytest.fixture(scope="session")
def web_client(synthetic_web):
    return Client(synthetic_web)


@pytest.fixture(scope="session")
def study_dataset():
    return conduct_study()


@pytest.fixture(scope="session")
def pr_dataset():
    return simulate_governance()
