"""Integration tests: every experiment pipeline reproduces its artefact."""

import pytest

from repro.analysis import EXPERIMENTS, run_experiment
from repro.analysis.govchar import figure5, figure6, table3
from repro.analysis.listchar import (
    composition_scalars,
    figure3,
    figure7,
    figure8,
    figure9,
)
from repro.analysis.surveychar import (
    figure1,
    figure2,
    survey_scalars,
    table1,
    table2,
)


class TestRegistry:
    def test_all_paper_artefacts_registered(self):
        assert set(EXPERIMENTS) == {
            "T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5", "F6", "F7",
            "F8", "F9", "A1", "A2",
        }

    def test_unknown_id_raises_with_listing(self):
        with pytest.raises(KeyError) as info:
            run_experiment("F99")
        assert "T1" in str(info.value)

    def test_id_case_insensitive(self):
        result = run_experiment("f3")
        assert result.experiment_id == "F3"


class TestListPipelines:
    def test_figure3_exact(self, rws_list):
        result = figure3(rws_list)
        assert result.scalars == pytest.approx({
            "associated_count": 108.0,
            "service_count": 14.0,
            "associated_median_distance": 7.0,
            "associated_identical_fraction": 10 / 108,
        })
        assert len(result.series) == 2

    def test_figure7_exact(self, rws_history):
        result = figure7(rws_history)
        for key in ("sets_total", "fraction_with_associated",
                    "fraction_with_service", "fraction_with_cctld"):
            assert result.scalars[key] == pytest.approx(
                result.paper_values[key], abs=0.005), key
        # Series cover the full window and end at the snapshot counts.
        assert result.series["Associated sites"][-1] == 108.0
        assert result.series["Service sites"][-1] == 14.0

    def test_figure8_news_largest(self, rws_history, category_db):
        result = figure8(rws_history, category_db)
        finals = {name: values[-1] for name, values in result.series.items()}
        assert finals["news and media"] == max(finals.values())
        assert sum(finals.values()) == 41.0

    def test_figure9_totals(self, rws_history, category_db):
        result = figure9(rws_history, category_db)
        finals = {name: values[-1] for name, values in result.series.items()}
        assert sum(finals.values()) == 108.0
        assert "compromised/spam" in finals

    def test_composition_scalars(self, rws_list):
        result = composition_scalars(rws_list)
        assert result.scalars["sets"] == 41.0
        assert result.scalars["associated_members"] == 108.0
        rows = result.comparison_rows()
        assert any(row[0] == "sets" for row in rows)


class TestSurveyPipelines:
    def test_table1_totals(self, study_dataset):
        result = table1(study_dataset)
        total = sum(result.scalars[key] for key in result.scalars
                    if key != "total_responses")
        assert total == result.scalars["total_responses"]
        assert len(result.rows) == 4

    def test_table2_exact(self, study_dataset):
        result = table2(study_dataset)
        for key, paper_value in result.paper_values.items():
            assert result.scalars[key] == pytest.approx(paper_value,
                                                        abs=0.1), key

    def test_figure1_consistent_with_table1(self, study_dataset):
        matrix = figure1(study_dataset)
        summary = table1(study_dataset)
        assert matrix.scalars["related_said_related"] == \
            summary.scalars["rws_same_set_related"]
        assert (matrix.scalars["related_said_related"]
                + matrix.scalars["related_said_unrelated"]
                + matrix.scalars["unrelated_said_related"]
                + matrix.scalars["unrelated_said_unrelated"]
                ) == summary.scalars["total_responses"]

    def test_figure2_outcomes(self, study_dataset):
        result = figure2(study_dataset)
        assert result.scalars["split_significant"] == 1.0
        assert result.scalars["significant_category_pairs"] == 0.0

    def test_survey_scalars_match_paper_claims(self, study_dataset):
        result = survey_scalars(study_dataset)
        assert abs(result.scalars["privacy_harming_pct"] - 36.8) < 5
        assert abs(result.scalars["participants_with_error_pct"] - 73.3) < 10


class TestGovernancePipelines:
    def test_table3_exact(self, pr_dataset):
        result = table3(pr_dataset)
        assert result.scalars == result.paper_values

    def test_figure5_exact(self, pr_dataset):
        result = figure5(pr_dataset)
        assert result.scalars["total_prs"] == 114.0
        assert result.scalars["unique_primaries"] == 60.0
        # Cumulative series end at the split.
        assert result.series["Approved"][-1] == 47.0
        assert result.series["Closed (without being merged)"][-1] == 67.0

    def test_figure6_exact(self, pr_dataset):
        result = figure6(pr_dataset)
        assert result.scalars["approved_median_days"] == 5.0
        assert result.scalars["merged_ever_failing_checks"] == 1.0
