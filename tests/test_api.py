"""Tests for the API protocol layer (repro.api)."""

import json
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    API_VERSION,
    ApiError,
    BatchQueryRequest,
    BatchQueryResponse,
    DeltaRequest,
    DeltaResponse,
    Dispatcher,
    ErrorCode,
    ErrorResponse,
    LatencyRecorder,
    PollRequest,
    PollResponse,
    PublishRequest,
    PublishResponse,
    QueryRequest,
    QueryResponse,
    RequestCounter,
    ResolveRequest,
    ResolveResponse,
    StatsRequest,
    StatsResponse,
    SubmitRequest,
    SubmitResponse,
    TokenBucketLimiter,
    VerdictCache,
    WireError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    negotiate_version,
)
from repro.rws.diff import ListDiff
from repro.rws.model import (
    MemberRecord,
    RelatedWebsiteSet,
    RwsList,
    SiteRole,
)
from repro.serve import RwsService
from repro.serve.index import QueryResult
from repro.serve.service import QueryVerdict
from repro.serve.snapshot import SnapshotDelta


def small_list() -> RwsList:
    return RwsList(sets=[
        RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],
            service=["example-cdn.com"],
            cctlds={"example.com": ["example.co.uk"]},
            rationales={
                "example-news.com": "Shared branding with example.com.",
                "example-cdn.com": "Asset host for example.com.",
            },
        ),
        RelatedWebsiteSet(
            primary="other.com",
            associated=["other-shop.com"],
            rationales={"other-shop.com": "Affiliated storefront."},
        ),
    ])


def grown_list() -> RwsList:
    grown = small_list()
    grown.sets[0].associated.append("example-blog.com")
    grown.sets[0].rationales["example-blog.com"] = "Blog."
    return grown


@pytest.fixture()
def service():
    instance = RwsService()
    instance.publish(small_list())
    yield instance
    instance.queue.shutdown()


@pytest.fixture()
def dispatcher(service):
    return Dispatcher(service)


class TestDispatcherQueries:
    def test_query_routes_to_service(self, service, dispatcher):
        response = dispatcher.dispatch(
            QueryRequest("www.example.com", "example-news.com"))
        assert type(response) is QueryResponse
        assert response.verdict.related
        assert response.verdict.site_a == "example.com"
        assert service.stats.queries == 1

    def test_query_unresolvable_host_maps_to_error(self, dispatcher):
        response = dispatcher.dispatch(QueryRequest("com", "example.com"))
        assert type(response) is ErrorResponse
        assert response.error.code is ErrorCode.UNRESOLVABLE_HOST
        assert response.error.detail == {"host_a": "com"}
        assert response.op == "query"

    def test_query_both_hosts_unresolvable(self, dispatcher):
        response = dispatcher.dispatch(QueryRequest("com", "net"))
        assert type(response) is ErrorResponse
        assert set(response.error.detail) == {"host_a", "host_b"}

    def test_batch_query_detail_matches_single_queries(self, dispatcher):
        pairs = [("example.com", "example-news.com"),
                 ("example.com", "other.com"),
                 ("com", "example.com")]
        batch = dispatcher.dispatch(BatchQueryRequest(pairs=pairs))
        assert type(batch) is BatchQueryResponse
        assert batch.related == [True, False, False]
        assert batch.verdicts is not None
        # A fresh service answering one-by-one gives identical verdicts.
        reference = RwsService()
        reference.publish(small_list())
        try:
            expected = [reference.query(a, b) for a, b in pairs]
        finally:
            reference.queue.shutdown()
        assert batch.verdicts == expected

    def test_batch_query_compact_carries_bits_only(self, dispatcher):
        batch = dispatcher.dispatch(BatchQueryRequest(
            pairs=[("example.com", "example-cdn.com"), ("a.com", "b.com")],
            detail=False))
        assert batch.related == [True, False]
        assert batch.verdicts is None

    def test_resolved_batch_skips_the_resolver(self, service, dispatcher):
        # Site-level pairs: the client resolved hosts itself (None for
        # failures), so the service resolver must see no traffic.
        batch = dispatcher.dispatch(BatchQueryRequest(
            pairs=[("example.com", "example-news.com"),
                   ("example.com", "example.com"),
                   (None, "example.com"),
                   ("stranger.org", "example.com")],
            detail=False, resolved=True))
        assert batch.related == [True, True, False, False]
        assert batch.verdicts is None
        assert service.stats.resolver_hits == 0
        assert service.stats.resolver_misses == 0
        assert service.stats.queries == 4  # still counted as queries
        assert service.stats.related_hits == 2

    def test_resolved_batch_matches_host_batch_verdicts(self, dispatcher):
        host_pairs = [("www.example.com", "example-news.com"),
                      ("other.com", "example.com"),
                      ("com", "example.com")]
        by_host = dispatcher.dispatch(
            BatchQueryRequest(pairs=host_pairs, detail=False))
        resolver = RwsService()
        resolver.publish(small_list())
        try:
            site_pairs = [(resolver.resolve_host(a), resolver.resolve_host(b))
                          for a, b in host_pairs]
        finally:
            resolver.queue.shutdown()
        by_site = dispatcher.dispatch(BatchQueryRequest(
            pairs=site_pairs, detail=False, resolved=True))
        assert by_site.related == by_host.related

    def test_resolve(self, dispatcher):
        ok = dispatcher.dispatch(ResolveRequest("www.example.co.uk"))
        assert ok == ResolveResponse(host="www.example.co.uk",
                                     site="example.co.uk")
        err = dispatcher.dispatch(ResolveRequest("co.uk"))
        assert type(err) is ErrorResponse
        assert err.error.code is ErrorCode.UNRESOLVABLE_HOST


class TestDispatcherLifecycle:
    def test_publish_delta_round_trip(self, service, dispatcher):
        published = dispatcher.dispatch(PublishRequest(rws_list=grown_list()))
        assert type(published) is PublishResponse
        assert published.version == 2
        delta = dispatcher.dispatch(DeltaRequest(from_version=1))
        assert type(delta) is DeltaResponse
        assert delta.delta.to_version == 2
        assert [r.site for r in delta.delta.diff.added_members] \
            == ["example-blog.com"]

    def test_delta_unknown_version_is_stale_snapshot(self, dispatcher):
        response = dispatcher.dispatch(DeltaRequest(from_version=99))
        assert type(response) is ErrorResponse
        assert response.error.code is ErrorCode.STALE_SNAPSHOT

    def test_submit_poll_round_trip(self, service, dispatcher):
        submitted = dispatcher.dispatch(
            SubmitRequest(rws_set=small_list().sets[1]))
        assert type(submitted) is SubmitResponse
        service.drain()
        polled = dispatcher.dispatch(PollRequest(ticket=submitted.ticket))
        assert type(polled) is PollResponse
        assert polled.terminal
        assert polled.status == "passed"
        assert polled.passed is True

    def test_poll_unknown_ticket(self, dispatcher):
        response = dispatcher.dispatch(PollRequest(ticket="sub-9999"))
        assert type(response) is ErrorResponse
        assert response.error.code is ErrorCode.UNKNOWN_TICKET

    def test_stats(self, dispatcher):
        dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        response = dispatcher.dispatch(StatsRequest())
        assert type(response) is StatsResponse
        assert response.report["queries"] == 1.0
        assert "psl_hits" in response.report

    def test_unknown_request_type_is_malformed(self, dispatcher):
        response = dispatcher.dispatch(object())
        assert type(response) is ErrorResponse
        assert response.error.code is ErrorCode.MALFORMED

    def test_handler_crash_maps_to_internal(self, service):
        service.publish = None  # sabotage: handler will raise TypeError
        dispatcher = Dispatcher(service)
        response = dispatcher.dispatch(PublishRequest(rws_list=small_list()))
        assert type(response) is ErrorResponse
        assert response.error.code is ErrorCode.INTERNAL


class TestMiddleware:
    def test_request_counter_counts_requests_and_errors(self, service):
        counter = RequestCounter()
        dispatcher = Dispatcher(service, middlewares=(counter,))
        dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        dispatcher.dispatch(QueryRequest("com", "other.com"))
        dispatcher.dispatch(StatsRequest())
        assert counter.requests == {"query": 2, "stats": 1}
        assert counter.errors == {"query": 1}
        assert counter.snapshot()["query_errors"] == 1

    def test_request_counter_sees_internal_errors(self, service):
        # Handler crashes convert to INTERNAL inside the chain, so the
        # counters observe them (an error storm must not look healthy).
        service.publish = None  # sabotage: handler will raise TypeError
        counter = RequestCounter()
        dispatcher = Dispatcher(service, middlewares=(counter,))
        response = dispatcher.dispatch(PublishRequest(rws_list=small_list()))
        assert type(response) is ErrorResponse
        assert response.error.code is ErrorCode.INTERNAL
        assert counter.errors == {"publish": 1}

    def test_latency_recorder_fills_histograms(self, service):
        recorder = LatencyRecorder()
        dispatcher = Dispatcher(service, middlewares=(recorder,))
        for _ in range(8):
            dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        histogram = recorder.metrics.histograms["api_query"]
        assert histogram.total == 8
        assert histogram.percentile(0.5) > 0

    def test_token_bucket_sheds_after_burst(self, service):
        clock = FakeClock()
        limiter = TokenBucketLimiter(rate=1.0, burst=2.0, clock=clock)
        dispatcher = Dispatcher(service, middlewares=(limiter,))
        ok = [dispatcher.dispatch(QueryRequest("example.com", "other.com"))
              for _ in range(3)]
        assert [type(r) for r in ok] == [QueryResponse, QueryResponse,
                                         ErrorResponse]
        assert ok[2].error.code is ErrorCode.RATE_LIMITED
        assert float(ok[2].error.detail["retry_after_s"]) > 0
        assert limiter.shed == 1
        # Refill restores service.
        clock.advance(1.0)
        again = dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        assert type(again) is QueryResponse

    def test_token_bucket_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucketLimiter(rate=0, burst=1)

    def test_verdict_cache_skips_repeat_service_calls(self, service):
        clock = FakeClock()
        cache = VerdictCache(ttl=5.0, clock=clock)
        dispatcher = Dispatcher(service, middlewares=(cache,))
        first = dispatcher.dispatch(
            QueryRequest("example.com", "example-news.com"))
        second = dispatcher.dispatch(
            QueryRequest("example.com", "example-news.com"))
        assert second is first  # memoised, not re-answered
        assert service.stats.queries == 1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_verdict_cache_expires_by_ttl(self, service):
        clock = FakeClock()
        cache = VerdictCache(ttl=1.0, clock=clock)
        dispatcher = Dispatcher(service, middlewares=(cache,))
        dispatcher.dispatch(QueryRequest("example.com", "example-news.com"))
        clock.advance(1.5)
        dispatcher.dispatch(QueryRequest("example.com", "example-news.com"))
        assert service.stats.queries == 2

    def test_verdict_cache_invalidated_by_publish(self, service):
        cache = VerdictCache(ttl=3600.0)
        dispatcher = Dispatcher(service, middlewares=(cache,))
        before = dispatcher.dispatch(
            QueryRequest("example.com", "example-blog.com"))
        assert type(before) is QueryResponse and not before.verdict.related
        dispatcher.dispatch(PublishRequest(rws_list=grown_list()))
        after = dispatcher.dispatch(
            QueryRequest("example.com", "example-blog.com"))
        assert after.verdict.related  # stale verdict did not survive

    def test_verdict_cache_caches_error_responses(self, service):
        cache = VerdictCache(ttl=3600.0)
        dispatcher = Dispatcher(service, middlewares=(cache,))
        first = dispatcher.dispatch(QueryRequest("com", "example.com"))
        second = dispatcher.dispatch(QueryRequest("com", "example.com"))
        assert second is first
        assert service.stats.queries == 1

    def test_verdict_cache_never_pins_transient_errors(self, service):
        # A RATE_LIMITED answer from deeper in the chain must not be
        # served from cache once the bucket refills.
        clock = FakeClock()
        cache = VerdictCache(ttl=3600.0, clock=clock)
        limiter = TokenBucketLimiter(rate=1.0, burst=1.0, clock=clock)
        dispatcher = Dispatcher(service, middlewares=(cache, limiter))
        ok = dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        assert type(ok) is QueryResponse
        cache._cache.clear()  # force the next answer through the limiter
        shed = dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        assert type(shed) is ErrorResponse
        assert shed.error.code is ErrorCode.RATE_LIMITED
        clock.advance(2.0)
        recovered = dispatcher.dispatch(
            QueryRequest("example.com", "other.com"))
        assert type(recovered) is QueryResponse

    def test_verdict_cache_refresh_does_not_evict_live_entries(self, service):
        clock = FakeClock()
        cache = VerdictCache(ttl=1.0, maxsize=2, clock=clock)
        dispatcher = Dispatcher(service, middlewares=(cache,))
        dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        clock.advance(2.0)  # first entry expires
        dispatcher.dispatch(QueryRequest("example.com", "example-news.com"))
        # Refreshing the expired key at capacity must not evict the
        # still-live second entry.
        dispatcher.dispatch(QueryRequest("example.com", "other.com"))
        assert ("example.com", "example-news.com") in cache._cache

    def test_chain_runs_outermost_first(self, service):
        order = []

        def outer(request, call_next):
            order.append("outer")
            return call_next(request)

        def inner(request, call_next):
            order.append("inner")
            return call_next(request)

        dispatcher = Dispatcher(service, middlewares=(outer, inner))
        dispatcher.dispatch(StatsRequest())
        assert order == ["outer", "inner"]


class FakeClock:
    """A deterministic monotonic clock for middleware tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# -- wire codec ---------------------------------------------------------------

LABEL = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
TLD = st.sampled_from(["com", "net", "org", "de", "fr", "io"])


@st.composite
def domains(draw) -> str:
    return f"{draw(LABEL)}.{draw(TLD)}"


@st.composite
def rws_sets(draw) -> RelatedWebsiteSet:
    primary = draw(domains())
    member_pool = draw(st.lists(domains(), min_size=1, max_size=6,
                                unique=True))
    members = [domain for domain in member_pool if domain != primary]
    if not members:
        members = [f"other-{primary}"]
    split = draw(st.integers(0, len(members)))
    associated = members[:split]
    service = members[split:]
    rationales = {site: f"rationale for {site}"
                  for site in associated + service}
    contact = draw(st.one_of(st.none(),
                             st.just(f"contact@{primary}")))
    return RelatedWebsiteSet(primary=primary, associated=associated,
                             service=service, rationales=rationales,
                             contact=contact)


@st.composite
def rws_lists(draw) -> RwsList:
    sets = draw(st.lists(rws_sets(), min_size=0, max_size=4))
    seen: set[str] = set()
    unique = []
    for rws_set in sets:
        if rws_set.primary not in seen:
            seen.add(rws_set.primary)
            unique.append(rws_set)
    return RwsList(sets=unique,
                   as_of=draw(st.one_of(st.none(), st.just("2024-03-26"))))


@st.composite
def member_records(draw) -> MemberRecord:
    role = draw(st.sampled_from(list(SiteRole)))
    return MemberRecord(
        site=draw(domains()),
        role=role,
        set_primary=draw(domains()),
        variant_of=draw(st.one_of(st.none(), domains())),
        rationale=draw(st.one_of(st.none(), st.just("because"))),
    )


@st.composite
def snapshot_deltas(draw) -> SnapshotDelta:
    diff = ListDiff(
        added_sets=draw(st.lists(domains(), max_size=3)),
        removed_sets=draw(st.lists(domains(), max_size=3)),
        changed_sets=draw(st.lists(domains(), max_size=3)),
        added_members=draw(st.lists(member_records(), max_size=3)),
        removed_members=draw(st.lists(member_records(), max_size=3)),
    )
    from_version = draw(st.integers(1, 50))
    return SnapshotDelta(
        from_version=from_version,
        to_version=draw(st.integers(from_version, 60)),
        from_hash=draw(st.text(alphabet="0123456789abcdef", min_size=64,
                               max_size=64)),
        to_hash=draw(st.text(alphabet="0123456789abcdef", min_size=64,
                             max_size=64)),
        diff=diff,
    )


@st.composite
def query_verdicts(draw) -> QueryVerdict:
    site_a = draw(st.one_of(st.none(), domains()))
    site_b = draw(st.one_of(st.none(), domains()))
    result = None
    if site_a is not None and site_b is not None:
        roles = st.one_of(st.none(), st.sampled_from(list(SiteRole)))
        result = QueryResult(
            site_a=site_a, site_b=site_b,
            related=draw(st.booleans()),
            set_primary=draw(st.one_of(st.none(), domains())),
            role_a=draw(roles), role_b=draw(roles),
        )
    return QueryVerdict(
        host_a=draw(domains()), host_b=draw(domains()),
        site_a=site_a, site_b=site_b, result=result,
    )


@st.composite
def host_pairs(draw) -> list:
    return draw(st.lists(st.tuples(domains(), domains()), max_size=6))


@st.composite
def api_errors(draw) -> ApiError:
    return ApiError(
        code=draw(st.sampled_from(list(ErrorCode))),
        message=draw(st.text(max_size=40)),
        detail=draw(st.dictionaries(st.sampled_from(["host", "host_a",
                                                     "ticket", "op"]),
                                    st.text(max_size=20), max_size=3)),
    )


@st.composite
def requests(draw):
    kind = draw(st.sampled_from(["query", "batch_query", "resolve",
                                 "publish", "delta", "submit", "poll",
                                 "stats"]))
    if kind == "query":
        return QueryRequest(host_a=draw(domains()), host_b=draw(domains()))
    if kind == "batch_query":
        resolved = draw(st.booleans())
        sites = st.one_of(st.none(), domains()) if resolved else domains()
        pairs = draw(st.lists(st.tuples(sites, sites), max_size=6))
        return BatchQueryRequest(pairs=pairs, detail=draw(st.booleans()),
                                 resolved=resolved)
    if kind == "resolve":
        return ResolveRequest(host=draw(domains()))
    if kind == "publish":
        return PublishRequest(rws_list=draw(rws_lists()))
    if kind == "delta":
        return DeltaRequest(from_version=draw(st.integers(1, 50)),
                            to_version=draw(st.one_of(
                                st.none(), st.integers(1, 50))))
    if kind == "submit":
        return SubmitRequest(rws_set=draw(rws_sets()))
    if kind == "poll":
        return PollRequest(ticket=draw(st.text(
            alphabet=string.ascii_lowercase + string.digits + "-",
            min_size=1, max_size=12)))
    return StatsRequest()


@st.composite
def responses(draw):
    kind = draw(st.sampled_from(["query", "batch_query", "resolve",
                                 "publish", "delta", "submit", "poll",
                                 "stats", "error"]))
    if kind == "query":
        return QueryResponse(verdict=draw(query_verdicts()))
    if kind == "batch_query":
        verdicts = draw(st.one_of(
            st.none(), st.lists(query_verdicts(), max_size=4)))
        bits = ([v.related for v in verdicts] if verdicts is not None
                else draw(st.lists(st.booleans(), max_size=4)))
        return BatchQueryResponse(related=bits, verdicts=verdicts)
    if kind == "resolve":
        return ResolveResponse(host=draw(domains()), site=draw(domains()))
    if kind == "publish":
        return PublishResponse(version=draw(st.integers(1, 99)),
                               content_hash=draw(st.text(
                                   alphabet="0123456789abcdef",
                                   min_size=64, max_size=64)))
    if kind == "delta":
        return DeltaResponse(delta=draw(snapshot_deltas()))
    if kind == "submit":
        return SubmitResponse(ticket=draw(st.text(
            alphabet=string.ascii_lowercase + string.digits + "-",
            min_size=1, max_size=12)))
    if kind == "poll":
        terminal = draw(st.booleans())
        return PollResponse(
            ticket="sub-0001",
            status=draw(st.sampled_from(["queued", "running", "passed",
                                         "rejected", "error"])),
            terminal=terminal,
            passed=draw(st.one_of(st.none(), st.booleans()))
            if terminal else None,
            findings=draw(st.lists(st.text(max_size=30), max_size=3))
            if terminal else [],
        )
    if kind == "stats":
        return StatsResponse(report=draw(st.dictionaries(
            st.sampled_from(["queries", "related_hits", "publishes",
                             "mean_query_ns"]),
            st.floats(min_value=0, max_value=1e9, allow_nan=False),
            max_size=4)))
    return ErrorResponse(error=draw(api_errors()),
                         op=draw(st.one_of(st.none(), st.just("query"))))


class TestWireCodecRoundTrip:
    @settings(max_examples=120, deadline=None)
    @given(request=requests())
    def test_every_request_round_trips(self, request):
        decoded, version = decode_request(encode_request(request))
        assert decoded == request
        assert version == API_VERSION

    @settings(max_examples=120, deadline=None)
    @given(response=responses())
    def test_every_response_round_trips(self, response):
        decoded, version = decode_response(encode_response(response))
        assert decoded == response
        assert version == API_VERSION

    @settings(max_examples=40, deadline=None)
    @given(request=requests(), version=st.integers(1, 5))
    def test_any_supported_version_negotiates(self, request, version):
        wire = encode_request(request, version=version)
        decoded, negotiated = decode_request(wire)
        assert decoded == request
        assert negotiated == min(version, API_VERSION)


class TestWireCodecErrors:
    def test_negotiate_version(self):
        assert negotiate_version(None) == API_VERSION
        assert negotiate_version(API_VERSION) == API_VERSION
        assert negotiate_version(API_VERSION + 7) == API_VERSION
        with pytest.raises(WireError):
            negotiate_version(0)
        with pytest.raises(WireError):
            negotiate_version("1")
        with pytest.raises(WireError):
            negotiate_version(True)

    def test_invalid_json_is_malformed(self):
        with pytest.raises(WireError) as excinfo:
            decode_request("{nope")
        assert excinfo.value.error.code is ErrorCode.MALFORMED

    def test_unknown_op(self):
        with pytest.raises(WireError, match="unknown operation"):
            decode_request(json.dumps({"api_version": 1, "op": "frobnicate",
                                       "payload": {}}))

    def test_bad_payload_shape(self):
        with pytest.raises(WireError, match="host_a"):
            decode_request(json.dumps({"api_version": 1, "op": "query",
                                       "payload": {"host_a": 7}}))

    def test_null_sites_require_resolved_both_ways(self):
        # Symmetric strictness: the encoder refuses what the decoder
        # would reject, so nothing the codec emits fails its own decode.
        with pytest.raises(WireError, match="resolved"):
            encode_request(BatchQueryRequest(pairs=[(None, "b.com")]))
        with pytest.raises(WireError, match="pair"):
            decode_request(json.dumps({
                "api_version": 1, "op": "batch_query",
                "payload": {"pairs": [[None, "b.com"]],
                            "resolved": False},
            }))
        round_tripped, _ = decode_request(encode_request(
            BatchQueryRequest(pairs=[(None, "b.com")], resolved=True)))
        assert round_tripped.pairs == [(None, "b.com")]

    def test_kind_mismatch(self):
        wire = encode_request(StatsRequest())
        with pytest.raises(WireError, match="response envelope"):
            decode_response(wire)

    def test_dispatch_wire_never_raises(self, dispatcher):
        for bad in ["{nope", '{"op": "frobnicate"}',
                    '{"api_version": 0, "op": "stats"}', '[]']:
            envelope = json.loads(dispatcher.dispatch_wire(bad))
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "MALFORMED"

    def test_dispatch_wire_round_trip(self, dispatcher):
        wire = encode_request(QueryRequest("www.example.com", "other.com"))
        envelope = json.loads(dispatcher.dispatch_wire(wire))
        assert envelope["ok"] is True
        assert envelope["op"] == "query"
        assert envelope["payload"]["verdict"]["site_a"] == "example.com"

    def test_dispatch_wire_echoes_negotiated_version(self, dispatcher):
        wire = encode_request(StatsRequest(), version=API_VERSION + 3)
        envelope = json.loads(dispatcher.dispatch_wire(wire))
        assert envelope["api_version"] == API_VERSION


class TestBatchedServicePaths:
    """The satellite fix: query_batch/related_batch vs the old loop."""

    def test_query_batch_matches_per_query_loop(self):
        pairs = [("www.example.com", "example-news.com"),
                 ("example.com", "example.com"),
                 ("com", "example.com"),
                 ("stranger.org", "example.com"),
                 ("other.com", "other-shop.com")] * 3
        batched = RwsService()
        batched.publish(small_list())
        looped = RwsService()
        looped.publish(small_list())
        try:
            expected = [looped.query(a, b) for a, b in pairs]
            actual = batched.query_batch(pairs)
            assert actual == expected
            assert batched.stats.queries == looped.stats.queries
            assert batched.stats.related_hits == looped.stats.related_hits
            assert batched.stats.resolver_errors \
                == looped.stats.resolver_errors
            assert batched.related_batch(pairs) \
                == [v.related for v in expected]
        finally:
            batched.queue.shutdown()
            looped.queue.shutdown()

    def test_batch_resolver_accounting_matches_loop(self):
        pairs = [("example.com", "example-news.com"),
                 ("example.com", "example-news.com"),
                 ("other.com", "example.com")]
        batched = RwsService()
        batched.publish(small_list())
        looped = RwsService()
        looped.publish(small_list())
        try:
            batched.query_batch(pairs)
            for a, b in pairs:
                looped.query(a, b)
            assert batched.stats.resolver_hits == looped.stats.resolver_hits
            assert batched.stats.resolver_misses \
                == looped.stats.resolver_misses
        finally:
            batched.queue.shutdown()
            looped.queue.shutdown()

    def test_disabled_cache_batch_counts_every_miss(self):
        service = RwsService(resolver_cache_size=0)
        service.publish(small_list())
        try:
            bits = service.related_batch(
                [("example.com", "example-news.com")] * 4)
            assert bits == [True] * 4
            assert service.stats.resolver_hits == 0
            assert service.stats.resolver_misses == 8
        finally:
            service.queue.shutdown()

    def test_empty_batch(self, service):
        assert service.query_batch([]) == []
        assert service.related_batch([]) == []
        assert service.stats.queries == 0

    def test_queue_stats_snapshot_is_a_consistent_copy(self, service):
        service.submit(small_list().sets[0])
        service.drain()
        snapshot = service.queue.stats_snapshot()
        assert snapshot is not service.queue.stats
        assert snapshot.submitted == 1
        assert snapshot.passed == 1
        assert snapshot.completed == 1
