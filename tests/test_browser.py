"""Tests for the storage-partitioning browser simulator."""

import pytest

from repro.browser import (
    BROWSER_POLICIES,
    Browser,
    Cookie,
    CookieJar,
    GrantDecision,
    PartitionedStorage,
    StorageKey,
    TrackerScenario,
)
from repro.rws import RelatedWebsiteSet, RwsList


@pytest.fixture()
def rws() -> RwsList:
    return RwsList(sets=[RelatedWebsiteSet(
        primary="timesinternet.in",
        associated=["indiatimes.com"],
        service=["timescdn.net"],
        rationales={"indiatimes.com": "branding", "timescdn.net": "cdn"},
    )])


def chrome(rws_list: RwsList) -> Browser:
    return Browser(policy=BROWSER_POLICIES["chrome-rws"], rws_list=rws_list)


class TestStorageKeys:
    def test_first_party(self):
        key = StorageKey.first_party("example.com")
        assert key.is_first_party
        assert key.partition == "example.com"

    def test_partitioned_storage_isolation(self):
        storage = PartitionedStorage()
        key_a = StorageKey("tracker.example", "site-a.example")
        key_b = StorageKey("tracker.example", "site-b.example")
        storage.set(key_a, "uid", "1")
        assert storage.get(key_a, "uid") == "1"
        assert storage.get(key_b, "uid") is None

    def test_clear_site_spans_partitions(self):
        storage = PartitionedStorage()
        storage.set(StorageKey("t.example", "a.example"), "uid", "1")
        storage.set(StorageKey("t.example", "b.example"), "uid", "2")
        storage.clear_site("t.example")
        assert len(storage) == 0

    def test_keys_for_site(self):
        storage = PartitionedStorage()
        storage.set(StorageKey("t.example", "b.example"), "uid", "1")
        storage.set(StorageKey("t.example", "a.example"), "uid", "2")
        partitions = [key.partition for key in storage.keys_for_site("t.example")]
        assert partitions == ["a.example", "b.example"]


class TestCookieJar:
    def test_partitioned_cookies(self):
        jar = CookieJar()
        jar.set(Cookie("uid", "1", "t.example", "a.example"))
        jar.set(Cookie("uid", "2", "t.example", "b.example"))
        assert jar.get("t.example", "a.example", "uid").value == "1"
        assert jar.get("t.example", "b.example", "uid").value == "2"
        assert jar.partitions_for_site("t.example") == ["a.example",
                                                        "b.example"]

    def test_is_partitioned_flag(self):
        assert Cookie("a", "1", "t.example", "top.example").is_partitioned
        assert not Cookie("a", "1", "t.example", "t.example").is_partitioned

    def test_clear_site(self):
        jar = CookieJar()
        jar.set(Cookie("a", "1", "x.com", "x.com"))
        jar.set(Cookie("b", "2", "y.com", "y.com"))
        jar.clear_site("x.com")
        assert len(jar) == 1


class TestGrantLadder:
    def test_same_site_frame_trivially_granted(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in")
        frame = page.embed("timesinternet.in")
        decision = browser.request_storage_access(frame)
        assert decision is GrantDecision.GRANTED_SAME_SITE

    def test_rws_auto_grant_after_interaction(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")  # Prior interaction with the set.
        page = browser.visit("timesinternet.in")
        frame = page.embed("indiatimes.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.GRANTED_RWS
        assert frame.has_storage_access

    def test_rws_requires_prior_interaction_for_non_service(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in", interact=False)
        frame = page.embed("indiatimes.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.DENIED_POLICY

    def test_service_site_embedded_is_auto_granted(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in", interact=False)
        frame = page.embed("timescdn.net")
        assert browser.request_storage_access(frame) is \
            GrantDecision.GRANTED_RWS

    def test_service_site_cannot_be_top_level(self, rws):
        browser = chrome(rws)
        browser.visit("timesinternet.in")
        page = browser.visit("timescdn.net")
        frame = page.embed("indiatimes.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.DENIED_SERVICE_TOP_LEVEL

    def test_requires_user_gesture(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        frame = page.embed("indiatimes.com")
        decision = browser.request_storage_access(frame, user_gesture=False)
        assert decision is GrantDecision.DENIED_NO_USER_GESTURE

    def test_cross_set_falls_to_prompt_and_declines(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in")
        frame = page.embed("unrelated.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.DENIED_PROMPT_DECLINED

    def test_scripted_prompt_acceptance(self, rws):
        browser = Browser(
            policy=BROWSER_POLICIES["safari"],
            rws_list=rws,
            prompt_responses={("timesinternet.in", "unrelated.com"): True},
        )
        page = browser.visit("timesinternet.in")
        frame = page.embed("unrelated.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.GRANTED_PROMPT

    def test_brave_denies_without_prompt(self, rws):
        browser = Browser(policy=BROWSER_POLICIES["brave"], rws_list=rws)
        page = browser.visit("timesinternet.in")
        frame = page.embed("indiatimes.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.DENIED_POLICY

    def test_safari_ignores_rws(self, rws):
        browser = Browser(policy=BROWSER_POLICIES["safari"], rws_list=rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        frame = page.embed("indiatimes.com")
        assert browser.request_storage_access(frame) is \
            GrantDecision.DENIED_PROMPT_DECLINED

    def test_firefox_autogrant_quota(self, rws):
        browser = Browser(policy=BROWSER_POLICIES["firefox"], rws_list=rws)
        browser.visit("widget.com")  # Interacted as first party before.
        page = browser.visit("timesinternet.in")
        first = page.embed("widget.com")
        assert browser.request_storage_access(first) is \
            GrantDecision.GRANTED_AUTO
        # Quota (1) consumed; a second embedded site prompts.
        browser.visit("gadget.com")
        second = page.embed("gadget.com")
        assert browser.request_storage_access(second) is \
            GrantDecision.DENIED_PROMPT_DECLINED

    def test_legacy_profile_has_no_partitioning(self, rws):
        browser = Browser(policy=BROWSER_POLICIES["chrome-legacy"],
                          rws_list=rws)
        page = browser.visit("timesinternet.in")
        frame = page.embed("anything.net")
        assert browser.request_storage_access(frame) is \
            GrantDecision.GRANTED_UNPARTITIONED

    def test_grant_log_records_decisions(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in")
        frame = page.embed("unrelated.com")
        browser.request_storage_access(frame)
        assert browser.grant_log[-1][:2] == ("timesinternet.in",
                                             "unrelated.com")

    def test_visit_rejects_bare_suffix(self, rws):
        with pytest.raises(ValueError):
            chrome(rws).visit("co.uk")

    def test_visit_reduces_host_to_site(self, rws):
        page = chrome(rws).visit("www.timesinternet.in")
        assert page.site == "timesinternet.in"


class TestScriptStorage:
    def test_partitioned_frame_storage(self, rws):
        browser = chrome(rws)
        page_a = browser.visit("site-a.com")
        page_b = browser.visit("site-b.com")
        frame_a = page_a.embed("tracker.net")
        frame_b = page_b.embed("tracker.net")
        browser.frame_set_item(frame_a, "uid", "under-a")
        assert browser.frame_get_item(frame_b, "uid") is None

    def test_grant_unlocks_first_party_storage(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        frame = page.embed("indiatimes.com")
        browser.request_storage_access(frame)
        browser.frame_set_item(frame, "uid", "linked")
        # A later first-party visit sees the same storage.
        self_page = browser.visit("indiatimes.com")
        self_frame = self_page.embed("indiatimes.com")
        assert browser.frame_get_item(self_frame, "uid") == "linked"

    def test_cookie_paths_mirror_storage(self, rws):
        browser = chrome(rws)
        page = browser.visit("site-a.com")
        frame = page.embed("tracker.net")
        browser.frame_set_cookie(frame, "uid", "42")
        assert browser.frame_get_cookie(frame, "uid") == "42"
        assert browser.cookies.get("tracker.net", "site-a.com", "uid")

    def test_page_cookie_is_first_party(self, rws):
        browser = chrome(rws)
        page = browser.visit("site-a.com")
        browser.page_set_cookie(page, "session", "s1")
        assert browser.cookies.get("site-a.com", "site-a.com", "session")


class TestTrackerScenario:
    def test_policy_gradient(self, rws_list):
        scenario = TrackerScenario(
            visited_sites=["ya.ru", "kinopoisk.ru", "auto.ru",
                           "bild.de", "cafemedia.com"],
            embedded_site="webvisor.com",
            rws_list=rws_list,
        )
        reports = scenario.run_matrix(BROWSER_POLICIES)
        legacy = reports["chrome-legacy"].linked_pairs
        with_rws = reports["chrome-rws"].linked_pairs
        partitioned = reports["brave"].linked_pairs
        # The paper's privacy ordering: no partitioning links everything,
        # RWS links within-set, strict partitioning links nothing.
        assert legacy > with_rws > partitioned == 0

    def test_rws_links_exactly_the_set(self, rws_list):
        scenario = TrackerScenario(
            visited_sites=["ya.ru", "kinopoisk.ru", "auto.ru", "bild.de"],
            embedded_site="webvisor.com",
            rws_list=rws_list,
        )
        report = scenario.run(BROWSER_POLICIES["chrome-rws"])
        largest = max(report.profiles, key=len)
        assert set(largest) == {"ya.ru", "kinopoisk.ru", "auto.ru"}

    def test_report_metrics(self, rws_list):
        scenario = TrackerScenario(
            visited_sites=["a.com", "b.com"],
            embedded_site="t.net",
            rws_list=rws_list,
        )
        report = scenario.run(BROWSER_POLICIES["chrome-legacy"])
        assert report.linked_pairs == 1
        assert report.max_profile_size == 2
        assert report.grants == 2
