"""Tests for requestStorageAccessFor (top-level grant API)."""

import pytest

from repro.browser import BROWSER_POLICIES, Browser, GrantDecision
from repro.rws import RelatedWebsiteSet, RwsList


@pytest.fixture()
def rws() -> RwsList:
    return RwsList(sets=[RelatedWebsiteSet(
        primary="timesinternet.in",
        associated=["indiatimes.com"],
        service=["timescdn.net"],
        rationales={"indiatimes.com": "branding", "timescdn.net": "cdn"},
    )])


def chrome(rws_list: RwsList) -> Browser:
    return Browser(policy=BROWSER_POLICIES["chrome-rws"], rws_list=rws_list)


class TestRequestStorageAccessFor:
    def test_same_set_grant_after_interaction(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        decision = browser.request_storage_access_for(page, "indiatimes.com")
        assert decision is GrantDecision.GRANTED_RWS

    def test_grant_applies_to_later_frames(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        browser.request_storage_access_for(page, "indiatimes.com")
        frame = page.embed("indiatimes.com")
        # The frame starts with access: no per-frame rSA call needed.
        assert frame.has_storage_access

    def test_cross_set_denied_without_prompt(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in")
        decision = browser.request_storage_access_for(page, "bild.de")
        assert decision is GrantDecision.DENIED_POLICY

    def test_requires_user_gesture(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        decision = browser.request_storage_access_for(
            page, "indiatimes.com", user_gesture=False)
        assert decision is GrantDecision.DENIED_NO_USER_GESTURE

    def test_service_site_still_cannot_be_top_level(self, rws):
        browser = chrome(rws)
        browser.visit("timesinternet.in")
        page = browser.visit("timescdn.net")
        decision = browser.request_storage_access_for(page, "indiatimes.com")
        assert decision is GrantDecision.DENIED_SERVICE_TOP_LEVEL

    def test_same_site_trivially_granted(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in")
        decision = browser.request_storage_access_for(
            page, "www.timesinternet.in")
        assert decision is GrantDecision.GRANTED_SAME_SITE

    def test_unpartitioned_profile_grants_everything(self, rws):
        browser = Browser(policy=BROWSER_POLICIES["chrome-legacy"],
                          rws_list=rws)
        page = browser.visit("timesinternet.in")
        decision = browser.request_storage_access_for(page, "anything.net")
        assert decision is GrantDecision.GRANTED_UNPARTITIONED

    def test_partitioning_browser_without_rws_denies(self, rws):
        browser = Browser(policy=BROWSER_POLICIES["safari"], rws_list=rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        decision = browser.request_storage_access_for(page, "indiatimes.com")
        assert decision is GrantDecision.DENIED_POLICY

    def test_bare_suffix_rejected(self, rws):
        browser = chrome(rws)
        page = browser.visit("timesinternet.in")
        with pytest.raises(ValueError):
            browser.request_storage_access_for(page, "co.uk")

    def test_grant_logged(self, rws):
        browser = chrome(rws)
        browser.visit("indiatimes.com")
        page = browser.visit("timesinternet.in")
        browser.request_storage_access_for(page, "indiatimes.com")
        assert browser.grant_log[-1] == (
            "timesinternet.in", "indiatimes.com", GrantDecision.GRANTED_RWS,
        )
