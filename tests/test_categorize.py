"""Tests for the ThreatSeeker-substitute categoriser."""

from repro.categorize import (
    CATEGORY_MERGE_MAP,
    Category,
    CategoryDatabase,
    KeywordClassifier,
    merge_category,
)


class TestTaxonomy:
    def test_merge_known_labels(self):
        assert merge_category("sports") is Category.NEWS_AND_MEDIA
        assert merge_category("shopping") is Category.BUSINESS_AND_ECONOMY
        assert merge_category("web analytics") is \
            Category.ANALYTICS_INFRASTRUCTURE
        assert merge_category("travel") is Category.OTHER

    def test_merge_is_case_insensitive(self):
        assert merge_category("Sports") is Category.NEWS_AND_MEDIA
        assert merge_category("  NEWS AND MEDIA ") is Category.NEWS_AND_MEDIA

    def test_unknown_labels_merge_to_unknown(self):
        assert merge_category("no such category") is Category.UNKNOWN
        assert merge_category("") is Category.UNKNOWN

    def test_every_figure_category_reachable(self):
        reachable = set(CATEGORY_MERGE_MAP.values())
        for category in Category:
            assert category in reachable or category is Category.UNKNOWN or \
                category in reachable


class TestKeywordClassifier:
    CLASSIFIER = KeywordClassifier()

    def test_news_domain(self):
        assert self.CLASSIFIER.classify("dailyherald.com") is \
            Category.NEWS_AND_MEDIA

    def test_analytics_domain(self):
        assert self.CLASSIFIER.classify("webvisor.com") is \
            Category.ANALYTICS_INFRASTRUCTURE

    def test_shopping_domain(self):
        assert self.CLASSIFIER.classify("megamarket.com") is \
            Category.BUSINESS_AND_ECONOMY

    def test_opaque_domain_unknown(self):
        assert self.CLASSIFIER.classify("xqzvb.com") is Category.UNKNOWN

    def test_page_text_contributes(self):
        with_text = self.CLASSIFIER.classify(
            "xqzvb.com", page_text="latest news headlines daily news report",
        )
        assert with_text is Category.NEWS_AND_MEDIA

    def test_deterministic(self):
        for domain in ("dailyherald.com", "megamarket.com", "xqzvb.com"):
            assert self.CLASSIFIER.classify(domain) is \
                self.CLASSIFIER.classify(domain)


class TestDatabase:
    def make_db(self) -> CategoryDatabase:
        database = CategoryDatabase()
        database.add("bild.de", Category.NEWS_AND_MEDIA)
        database.add("ya.ru", Category.SEARCH_ENGINES_AND_PORTALS)
        return database

    def test_exact_lookup(self):
        assert self.make_db().category("bild.de") is Category.NEWS_AND_MEDIA

    def test_subdomain_inherits(self):
        assert self.make_db().category("www.bild.de") is \
            Category.NEWS_AND_MEDIA

    def test_fallback_to_classifier(self):
        database = self.make_db()
        assert database.category("dailyherald.com") is Category.NEWS_AND_MEDIA

    def test_no_fallback_when_disabled(self):
        database = CategoryDatabase(classifier=None)
        assert database.category("dailyherald.com") is Category.UNKNOWN

    def test_same_category(self):
        database = self.make_db()
        database.add("autobild.de", Category.NEWS_AND_MEDIA)
        assert database.same_category("bild.de", "autobild.de")
        assert not database.same_category("bild.de", "ya.ru")

    def test_unknown_never_matches_unknown(self):
        database = CategoryDatabase(classifier=None)
        assert not database.same_category("a.test", "b.test")

    def test_add_many_and_len(self):
        database = CategoryDatabase()
        database.add_many({"a.com": Category.OTHER, "b.com": Category.OTHER})
        assert len(database) == 2
