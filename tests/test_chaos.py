"""Tests for repro.chaos: seeded fault plans and the chaos router.

Covers the plan registry and the stateless fault roll, membership
churn (leave/rejoin/join with delta-vs-snapshot bootstraps),
deterministic primary failover, the lossy broadcast transport with
gap-detection recovery, canary publishes in both directions
(promote and rollback), and — the property everything above exists to
protect — bit-identical workload digests across runs, shard counts,
and executors that nevertheless *differ* from the fault-free runs.
"""

import dataclasses

import pytest

from repro.chaos import (
    CHAOS_PLANS,
    ChaosRouter,
    FaultPlan,
    chaos_plan,
    fault_roll,
)
from repro.rws import RelatedWebsiteSet, RwsList
from repro.serve import RwsService
from repro.workload import chaotic, get_scenario, run_serial, run_sharded

CHAOS_SCENARIOS = ("replica-churn", "failover", "lossy-replication",
                   "canary-rollback")


def small_list() -> RwsList:
    return RwsList(sets=[
        RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],
            service=["example-cdn.com"],
            rationales={
                "example-news.com": "Shared branding with example.com.",
                "example-cdn.com": "Asset host for example.com.",
            },
        ),
        RelatedWebsiteSet(
            primary="other.com",
            associated=["other-shop.com"],
            rationales={"other-shop.com": "Affiliated storefront."},
        ),
    ])


def grown_list() -> RwsList:
    rws_list = small_list()
    rws_list.sets[0].associated.append("example-mail.com")
    rws_list.sets[0].rationales["example-mail.com"] = "Webmail brand."
    rws_list.sets.append(RelatedWebsiteSet(
        primary="new.com", associated=["new-blog.com"],
        rationales={"new-blog.com": "Same publisher."},
    ))
    return rws_list


def shrunk_list() -> RwsList:
    rws_list = grown_list()
    del rws_list.sets[1]  # other.com's set is withdrawn
    return rws_list


@pytest.fixture()
def primary():
    service = RwsService(workers=2)
    service.publish(small_list())
    yield service
    service.queue.shutdown()


class TestFaultPlan:
    def test_named_plans_materialise(self):
        for name in CHAOS_PLANS:
            plan = chaos_plan(name, 400, 4)
            assert plan.name == name
            with pytest.raises(dataclasses.FrozenInstanceError):
                plan.seed = 99  # pure data: frozen, picklable

    def test_unknown_plan_names_the_known_ones(self):
        with pytest.raises(KeyError, match="lossy-replication"):
            chaos_plan("split-brain", 400)
        with pytest.raises(KeyError, match="canary-rollback"):
            chaotic("takedown", "split-brain")

    def test_fault_roll_is_a_pure_function(self):
        draws = [fault_roll(37, "drop", r, h)
                 for r in range(10) for h in range(200)]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        # Repeatable regardless of when/where it's asked...
        assert fault_roll(37, "drop", 3, 7) == fault_roll(37, "drop", 3, 7)
        # ...and sensitive to every key component.
        assert fault_roll(37, "drop", 3, 7) != fault_roll(38, "drop", 3, 7)
        assert fault_roll(37, "drop", 3, 7) != fault_roll(37, "dup", 3, 7)
        assert fault_roll(37, "drop", 3, 7) != fault_roll(37, "drop", 4, 7)
        # Roughly uniform over [0, 1): the rates mean what they say.
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55

    def test_canary_count_rounds_up_and_clamps(self):
        plan = FaultPlan(name="t", canary_fraction=0.5)
        assert plan.canary_count(4) == 2
        assert plan.canary_count(3) == 2  # ceil
        assert plan.canary_count(1) == 1
        assert plan.canary_count(0) == 0
        assert FaultPlan(name="t").canary_count(4) == 0


class TestMembershipChurn:
    def test_leave_reroutes_and_rejoin_bootstraps_by_delta(self, primary):
        plan = FaultPlan(name="t", leaves=((1, 5, 20),))
        router = ChaosRouter(primary, replicas=3, plan=plan,
                             policy="rendezvous")
        router.advance(5)
        active_ids = [r.replica_id for r in router._read_replicas()]
        assert active_ids == [0, 2]
        # Reads reroute atomically: every query still answers, and the
        # offline replica serves none of them.
        for i in range(12):
            assert router.query(
                "example.com", "example-news.com").related
            router.query(f"site-{i}.org", "example.com")
        offline = router.replicas[1]
        assert offline.stats.queries == 0
        # A publish while offline is lost to that replica entirely.
        router.publish(grown_list(), published_clock=6)
        router.advance(10)
        assert [r.version for r in router._read_replicas()] == [2, 2]
        assert offline.version == 1
        # Rejoin at 20: bootstrap via the store's squashed delta chain.
        router.advance(20)
        assert [r.replica_id for r in router._read_replicas()] == [0, 1, 2]
        assert offline.version == 2
        report = router.stats_report()
        assert report["chaos_leaves"] == 1
        assert report["chaos_rejoins"] == 1
        assert report["chaos_bootstrap_deltas"] >= 1

    def test_join_adds_a_routable_replica_mid_run(self, primary):
        plan = FaultPlan(name="t", joins=((101, 5, 0),))
        router = ChaosRouter(primary, replicas=2, plan=plan)
        router.publish(grown_list(), published_clock=1)
        router.advance(5)
        joined = [r.replica_id for r in router._read_replicas()]
        assert joined == [0, 1, 101]
        joiner = router.replicas[-1]
        assert joiner.replica_id == 101
        assert joiner.version == 2  # booted current, nothing pending
        assert router.stats_report()["chaos_joins"] == 1

    def test_availability_integrates_missing_capacity(self, primary):
        plan = FaultPlan(name="t", leaves=((2, 0, -1),))
        router = ChaosRouter(primary, replicas=3, plan=plan)
        router.advance(90)
        assert router.availability == pytest.approx(2 / 3)
        plan_full = FaultPlan(name="t")
        healthy = ChaosRouter(primary, replicas=3, plan=plan_full)
        healthy.advance(90)
        assert healthy.availability == 1.0


class TestFailover:
    def test_promotion_serves_writes_and_old_primary_rejoins(self, primary):
        plan = FaultPlan(name="t", primary_failure=(5, 20))
        router = ChaosRouter(primary, replicas=3, plan=plan)
        router.advance(5)
        # All replicas serve v1: the election ties to the lowest id.
        assert router.acting_primary_id == 0
        snapshot = router.publish(grown_list(), published_clock=6)
        assert snapshot.version == 2
        # The promoted node serves the new version; the dead primary
        # process never saw it — only the durable store did.
        assert router.epoch.version == 2
        assert primary.epoch.version == 1
        assert primary.store.get(2).content_hash == snapshot.content_hash
        router.advance(10)
        assert [r.version for r in router._read_replicas()] == [2, 2, 2]
        # Recovery: the old primary rejoins as a *new read replica*
        # (no failback), bootstrapped to the served version.
        router.advance(20)
        assert router.acting_primary_id == 0
        rejoined = router.replicas[-1]
        assert rejoined.replica_id == 3
        assert rejoined.version == 2
        report = router.stats_report()
        assert report["chaos_failovers"] == 1
        assert report["chaos_rejoins"] == 1

    def test_election_prefers_the_most_converged_replica(self, primary):
        # Replica 0 lags 10 ticks, so at the failure tick it still
        # serves v1 while 1 and 2 serve v2: the election must pass
        # over the lower id for the higher version.
        plan = FaultPlan(name="t", primary_failure=(3, -1))
        router = ChaosRouter(primary, replicas=3, plan=plan,
                             lag=[10, 0, 0])
        router.publish(grown_list(), published_clock=1)
        assert [r.version for r in router.replicas] == [1, 2, 2]
        router.advance(3)
        assert router.acting_primary_id == 1

    def test_governance_queue_survives_failover(self, primary):
        plan = FaultPlan(name="t", primary_failure=(1, -1))
        router = ChaosRouter(primary, replicas=2, plan=plan)
        router.advance(1)
        assert router.acting_primary_id >= 0
        ticket = router.submit(small_list().sets[0])
        assert router.drain(timeout=30)
        assert router.poll(ticket).terminal


class TestLossyBroadcast:
    def test_dropped_hop_recovers_via_heartbeat_resync(self, primary):
        plan = FaultPlan(name="t", seed=5, drop_rate=1.0, resync_delay=3)
        router = ChaosRouter(primary, replicas=2, plan=plan)
        router.publish(grown_list(), published_clock=1)
        assert [r.version for r in router.replicas] == [1, 1]
        assert router.stats_report()["chaos_drops"] == 2
        router.advance(4)  # the anti-entropy heartbeat fires
        assert [r.version for r in router.replicas] == [2, 2]
        report = router.stats_report()
        assert report["resyncs"] == 2

    def test_duplicated_hops_are_ignored(self, primary):
        plan = FaultPlan(name="t", seed=5, duplicate_rate=1.0)
        router = ChaosRouter(primary, replicas=2, plan=plan)
        router.publish(grown_list(), published_clock=1)
        assert [r.version for r in router.replicas] == [2, 2]
        assert router.stats_report()["chaos_duplicates"] == 2
        assert all(r.duplicates_ignored >= 1 for r in router.replicas)

    def test_reordered_hop_applies_late_but_correctly(self, primary):
        plan = FaultPlan(name="t", seed=5, reorder_rate=1.0,
                         reorder_delay=5)
        router = ChaosRouter(primary, replicas=1, plan=plan)
        router.publish(grown_list(), published_clock=1)
        replica = router.replicas[0]
        assert replica.version == 1  # held back by the reorder delay
        router.advance(5)
        assert replica.version == 1
        router.advance(6)
        assert replica.version == 2
        assert replica.epoch.content_hash == primary.epoch.content_hash
        assert router.stats_report()["chaos_reorders"] == 1

    def test_version_gap_recovers_with_full_snapshot(self, primary):
        # Find a seed where hop 2 drops but hop 3 delivers for replica
        # 0 at rate 0.5 — then the delivered hop arrives over a gap.
        seed = next(s for s in range(500)
                    if fault_roll(s, "drop", 0, 2) < 0.5
                    and fault_roll(s, "drop", 0, 3) >= 0.5)
        plan = FaultPlan(name="t", seed=seed, drop_rate=0.5)
        router = ChaosRouter(primary, replicas=1, plan=plan)
        replica = router.replicas[0]
        router.publish(grown_list(), published_clock=1)    # hop 2: lost
        assert replica.version == 1
        router.publish(shrunk_list(), published_clock=2)   # hop 3: lands
        # The gap was detected and recovered by full-snapshot resync —
        # never silently misapplied.
        assert replica.version == 3
        assert replica.resyncs == 1
        assert replica.epoch.content_hash == primary.epoch.content_hash


class TestCanaryPublish:
    ROLLBACK_PLAN = FaultPlan(name="t", seed=41, canary_fraction=0.5,
                              canary_probe_pairs=64,
                              canary_max_divergence=0.02)

    def test_divergent_candidate_rolls_back(self, primary):
        router = ChaosRouter(primary, replicas=4, plan=self.ROLLBACK_PLAN)
        served = router.publish(shrunk_list(), published_clock=1)
        # The takedown diverges far past 2%: the cluster keeps serving
        # v1 while the aborted v2 stays in the store's history.
        assert served.version == 1
        assert router.epoch.version == 1
        assert [r.version for r in router.replicas] == [1, 1, 1, 1]
        assert primary.store.latest.version == 2
        report = router.stats_report()
        assert report["chaos_canary_rollbacks"] == 1
        assert report["chaos_canary_promotes"] == 0

    def test_benign_candidate_promotes_everywhere(self, primary):
        plan = dataclasses.replace(self.ROLLBACK_PLAN,
                                   canary_max_divergence=0.5)
        router = ChaosRouter(primary, replicas=4, plan=plan)
        served = router.publish(shrunk_list(), published_clock=1)
        assert served.version == 2
        assert router.epoch.version == 2
        assert [r.version for r in router.replicas] == [2, 2, 2, 2]
        report = router.stats_report()
        assert report["chaos_canary_promotes"] == 1
        assert report["chaos_canary_rollbacks"] == 0

    def test_promote_under_failover_adopts_on_the_promoted_node(self,
                                                                primary):
        plan = dataclasses.replace(self.ROLLBACK_PLAN,
                                   canary_max_divergence=0.5,
                                   primary_failure=(1, -1))
        router = ChaosRouter(primary, replicas=3, plan=plan)
        router.advance(1)
        assert router.acting_primary_id >= 0
        served = router.publish(grown_list(), published_clock=2)
        assert served.version == 2
        assert router.epoch.version == 2
        assert primary.epoch.version == 1  # the dead process stays put
        assert [r.version for r in router.replicas] == [2, 2, 2]

    def test_republication_stages_nothing(self, primary):
        router = ChaosRouter(primary, replicas=2, plan=self.ROLLBACK_PLAN)
        served = router.publish(small_list(), published_clock=1)
        assert served.version == 1
        report = router.stats_report()
        assert report["chaos_canary_promotes"] == 0
        assert report["chaos_canary_rollbacks"] == 0


class TestChaosWorkloads:
    """The headline invariant: chaos changes outcomes, not determinism."""

    @pytest.mark.parametrize("name", CHAOS_SCENARIOS)
    def test_digest_stable_across_partitions_and_differs_from_fault_free(
            self, name):
        scenario = get_scenario(name)
        users = 200
        serial = run_serial(scenario, users, seed=3)
        inline = run_sharded(scenario, users, 3, seed=3,
                             executor="inline")
        threaded = run_sharded(scenario, users, 2, seed=3,
                               executor="thread")
        assert serial.digest == inline.digest == threaded.digest
        fault_free = run_serial(
            dataclasses.replace(scenario, chaos=None), users, seed=3)
        # The injected faults are *observable* in served verdicts —
        # otherwise the scenarios would be testing nothing.
        assert serial.digest != fault_free.digest

    def test_repeated_runs_are_bit_identical(self):
        scenario = get_scenario("lossy-replication")
        first = run_serial(scenario, 200, seed=0)
        second = run_serial(scenario, 200, seed=0)
        assert first.digest == second.digest
        assert (first.registry.digest_hex()
                == second.registry.digest_hex())

    def test_chaos_metrics_surface_in_the_registry(self):
        result = run_serial(get_scenario("failover"), 200, seed=0)
        portable = result.registry.to_portable()
        assert portable["counters"]["chaos.failovers"] >= 1
        assert portable["counters"]["chaos.rejoins"] >= 1
        assert 0.0 < portable["gauges"]["cluster.availability"] <= 1.0
        assert portable["gauges"]["cluster.active_replicas"] >= 1
        lossy = run_serial(get_scenario("lossy-replication"), 200, seed=0)
        counters = lossy.registry.to_portable()["counters"]
        assert counters["chaos.drops"] > 0
        assert counters["cluster.resyncs"] > 0

    def test_chaotic_wraps_any_scenario(self):
        scenario = chaotic("steady", "failover", replicas=2, lag=2)
        assert scenario.chaos == "failover"
        assert scenario.replicas == 2
        result = run_serial(scenario, 120, seed=1)
        assert result.digest == run_serial(scenario, 120, seed=1).digest
        assert result.registry.to_portable()[
            "counters"]["chaos.failovers"] >= 1

    def test_trace_digest_stays_partition_independent_under_chaos(self):
        # Chaos *events* fire between requests (and are deliberately
        # dropped from the request-keyed span stream), so the traced
        # request history must stay bit-identical however the users
        # are partitioned — even though membership and the write role
        # change mid-run.
        scenario = get_scenario("failover")
        serial = run_serial(scenario, 200, seed=0, trace=True)
        sharded = run_sharded(scenario, 200, 3, seed=0,
                              executor="inline", trace=True)
        assert serial.trace is not None and sharded.trace is not None
        assert serial.trace.digest == sharded.trace.digest
        assert serial.trace.span_count == sharded.trace.span_count
