"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.data import build_rws_list
from repro.rws import serialize_rws_json


class TestExperimentsCommand:
    def test_lists_all_ids(self, capsys):
        assert main(["experiments"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("T1", "T3", "F3", "F9", "A1"):
            assert experiment_id in output


class TestRunCommand:
    def test_run_single(self, capsys):
        assert main(["run", "A1"]) == 0
        output = capsys.readouterr().out
        assert "41.0" in output
        assert "paper" in output

    def test_run_multiple(self, capsys):
        assert main(["run", "F3", "A1"]) == 0
        output = capsys.readouterr().out
        assert "Levenshtein" in output
        assert "composition" in output.lower()

    def test_run_with_plots(self, capsys):
        assert main(["run", "F3", "--plots"]) == 0
        output = capsys.readouterr().out
        assert "1.00 |" in output  # The ASCII CDF's y axis.

    def test_unknown_id_fails(self, capsys):
        assert main(["run", "F99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_lowercase_id(self, capsys):
        assert main(["run", "a1"]) == 0


class TestValidateCommand:
    def test_valid_file_passes(self, tmp_path, capsys):
        path = tmp_path / "sets.json"
        path.write_text(serialize_rws_json(build_rws_list()))
        assert main(["validate", str(path)]) == 0
        output = capsys.readouterr().out
        assert "[PASS]" in output
        assert "[FAIL]" not in output

    def test_invalid_set_fails(self, tmp_path, capsys):
        document = {
            "sets": [{
                "primary": "https://example.com",
                "associatedSites": ["https://blog.example.com"],
                "rationaleBySite": {"https://blog.example.com": "blog"},
            }]
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        assert main(["validate", str(path)]) == 1
        output = capsys.readouterr().out
        assert "[FAIL]" in output
        assert "eTLD+1" in output

    def test_missing_file(self, capsys):
        assert main(["validate", "/nonexistent/sets.json"]) == 2
        assert "cannot load" in capsys.readouterr().err

    def test_malformed_json(self, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        assert main(["validate", str(path)]) == 2


class TestOtherCommands:
    def test_list_stats(self, capsys):
        assert main(["list-stats"]) == 0
        output = capsys.readouterr().out
        assert "92.68" in output or "92.7" in output

    def test_governance(self, capsys):
        assert main(["governance"]) == 0
        output = capsys.readouterr().out
        assert "202" in output
        assert "Unable to fetch .well-known JSON file" in output

    @pytest.mark.slow
    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        output = capsys.readouterr().out
        assert "RWS (same set)" in output

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestSurveyExport:
    @pytest.mark.slow
    def test_export_writes_csv(self, tmp_path, capsys):
        import csv

        path = tmp_path / "responses.csv"
        assert main(["survey", "--export", str(path)]) == 0
        with open(path, encoding="utf-8") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) > 300
        first = rows[0]
        assert {"participant", "group", "site_a", "site_b",
                "answered_related", "seconds"} <= set(first)
        assert "wrote" in capsys.readouterr().out


class TestQueryCommand:
    def test_related_pair(self, capsys):
        assert main(["query", "timesinternet.in", "indiatimes.com"]) == 0
        output = capsys.readouterr().out
        assert "related" in output
        assert "timesinternet.in ~ indiatimes.com" in output

    def test_unrelated_pair_exits_one(self, capsys):
        assert main(["query", "timesinternet.in", "bild.de"]) == 1
        assert "unrelated" in capsys.readouterr().out

    def test_hostname_is_resolved_to_site(self, capsys):
        assert main(["query", "www.timesinternet.in", "indiatimes.com"]) == 0
        assert "timesinternet.in ~ indiatimes.com" in capsys.readouterr().out

    def test_unresolvable_site_exits_two(self, capsys):
        assert main(["query", "com", "indiatimes.com"]) == 2
        assert "no registrable domain" in capsys.readouterr().out

    def test_single_site_errors(self, capsys):
        assert main(["query", "indiatimes.com"]) == 2
        assert "at least two" in capsys.readouterr().err


class TestQueryErrorPaths:
    def test_every_site_unresolvable_exits_two(self, capsys):
        assert main(["query", "com", "net", "org"]) == 2
        output = capsys.readouterr().out
        assert output.count("no registrable domain") == 2

    def test_mixed_outcomes_still_reports_each_pair(self, capsys):
        assert main(["query", "timesinternet.in", "indiatimes.com",
                     "com", "bild.de"]) == 2
        output = capsys.readouterr().out
        assert "related    timesinternet.in ~ indiatimes.com" in output
        assert "'com' has no registrable domain" in output
        assert "unrelated  timesinternet.in ~ bild.de" in output


class TestServeCommand:
    def test_reports_snapshot_and_counters(self, capsys):
        assert main(["serve", "--queries", "100"]) == 0
        output = capsys.readouterr().out
        assert "serving snapshot v1" in output
        assert "41 sets" in output
        assert "answered 100 membership queries" in output
        assert "psl_hits" in output
        # The dispatcher's middleware counters ride along.
        assert "api_batch_query" in output
        assert "api_stats" in output

    def test_validate_pushes_sets_through_queue(self, capsys):
        assert main(["serve", "--queries", "10", "--validate"]) == 0
        output = capsys.readouterr().out
        assert "validated 41 served sets" in output
        assert "(41 passed)" in output


class TestLoadErrorPaths:
    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["load", "--scenario", "no-such-traffic"]) == 2
        err = capsys.readouterr().err
        assert "unknown scenario" in err
        assert "steady" in err  # the known names are suggested

    def test_negative_users_exits_two(self, capsys):
        assert main(["load", "--users", "-5"]) == 2
        assert "--users >= 0" in capsys.readouterr().err

    def test_zero_shards_exits_two(self, capsys):
        assert main(["load", "--shards", "0"]) == 2
        assert "--shards >= 1" in capsys.readouterr().err


class TestApiCommand:
    def test_query_request_round_trips(self, capsys):
        request = json.dumps({
            "api_version": 1, "op": "query",
            "payload": {"host_a": "www.timesinternet.in",
                        "host_b": "indiatimes.com"},
        })
        assert main(["api", request]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        assert envelope["op"] == "query"
        assert envelope["payload"]["verdict"]["result"]["related"] is True

    def test_stats_request(self, capsys):
        assert main(["api", '{"op": "stats", "payload": {}}']) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["payload"]["report"]["index_sets"] == 41.0

    def test_unresolvable_host_error_shape(self, capsys):
        request = json.dumps({
            "op": "query",
            "payload": {"host_a": "com", "host_b": "indiatimes.com"},
        })
        assert main(["api", request]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "UNRESOLVABLE_HOST"
        assert envelope["error"]["detail"] == {"host_a": "com"}

    def test_unknown_ticket_error_shape(self, capsys):
        request = json.dumps({"op": "poll",
                              "payload": {"ticket": "sub-9999"}})
        assert main(["api", request]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["error"]["code"] == "UNKNOWN_TICKET"

    def test_malformed_request_exits_one_with_envelope(self, capsys):
        assert main(["api", "{not json"]) == 1
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "MALFORMED"

    def test_reads_stdin_when_no_argument(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin",
                            io.StringIO('{"op": "stats", "payload": {}}'))
        assert main(["api"]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_pretty_prints_indented_json(self, capsys):
        assert main(["api", "--pretty",
                     '{"op": "stats", "payload": {}}']) == 0
        output = capsys.readouterr().out
        assert output.startswith("{\n")
        assert json.loads(output)["ok"] is True


class TestStatsCommand:
    def test_renders_namespaced_table(self, capsys):
        assert main(["stats", "--queries", "120"]) == 0
        output = capsys.readouterr().out
        assert "serve.queries" in output
        assert "psl." in output
        assert "api.requests.batch_query" in output
        assert "registry digest " in output

    def test_replicated_backend_adds_cluster_metrics(self, capsys):
        assert main(["stats", "--queries", "60", "--replicas", "2"]) == 0
        output = capsys.readouterr().out
        assert "cluster.replicas" in output

    def test_json_snapshot_is_schema_tagged(self, capsys):
        assert main(["stats", "--queries", "40", "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["schema"] == "repro.obs.metrics/1"
        assert snapshot["counters"]["serve.queries"] == 40
        assert snapshot["meta"]["source"] == "repro stats"

    def test_out_writes_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main(["stats", "--queries", "40", "--out",
                     str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"] == "repro.obs.metrics/1"
        assert "wrote metrics snapshot" in capsys.readouterr().out

    def test_negative_queries_exits_two(self, capsys):
        assert main(["stats", "--queries", "-1"]) == 2
        assert "--queries >= 0" in capsys.readouterr().err


class TestTraceCommand:
    def test_prints_digest_and_span_table(self, capsys):
        assert main(["trace", "--users", "6", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert output.startswith("trace digest ")
        assert "serve.query" in output

    def test_digest_is_identical_across_shard_counts(self, capsys):
        assert main(["trace", "--users", "8", "--seed", "5"]) == 0
        serial = capsys.readouterr().out.splitlines()[0]
        assert main(["trace", "--users", "8", "--seed", "5",
                     "--shards", "2", "--executor", "thread"]) == 0
        sharded = capsys.readouterr().out.splitlines()[0]
        assert sharded == serial

    def test_out_writes_trace_snapshot(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["trace", "--users", "6", "--seed", "5",
                     "--out", str(path)]) == 0
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"] == "repro.obs.trace/1"
        assert snapshot["meta"]["scenario"] == "steady"
        assert snapshot["digest"] in capsys.readouterr().out

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["trace", "--scenario", "nope"]) == 2
        assert "nope" in capsys.readouterr().err


class TestLoadObsFlags:
    def test_trace_flag_appends_obs_digests_to_report(self, capsys):
        assert main(["load", "--scenario", "steady", "--users", "40",
                     "--seed", "7", "--trace"]) == 0
        output = capsys.readouterr().out
        assert "trace digest " in output
        assert "metrics digest " in output

    def test_metrics_and_trace_out_write_snapshots(self, tmp_path,
                                                   capsys):
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        assert main(["load", "--scenario", "steady", "--users", "40",
                     "--seed", "7", "--shards", "2",
                     "--executor", "inline",
                     "--metrics-out", str(metrics_path),
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        metrics = json.loads(metrics_path.read_text())
        trace = json.loads(trace_path.read_text())
        assert metrics["schema"] == "repro.obs.metrics/1"
        assert metrics["deterministic"]["workload.queries"] > 0
        assert trace["schema"] == "repro.obs.trace/1"
        assert trace["meta"]["shards"] == "2"


class TestNetTransportFlags:
    def test_serve_tcp_runs_over_loopback(self, capsys):
        assert main(["serve", "--tcp", "127.0.0.1:0",
                     "--queries", "50"]) == 0
        output = capsys.readouterr().out
        assert "tcp server listening on 127.0.0.1:" in output
        assert "answered 50 membership queries" in output
        # The wire's own counters join the report table.
        assert "net_requests" in output
        assert "net_client_reconnects" in output

    def test_serve_tcp_bad_address_exits_two(self, capsys):
        assert main(["serve", "--tcp", "nonsense",
                     "--queries", "1"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_load_tcp_digest_matches_inproc(self, capsys):
        assert main(["load", "--scenario", "steady", "--users", "60",
                     "--seed", "9"]) == 0
        inproc = capsys.readouterr().out
        assert main(["load", "--scenario", "steady", "--users", "60",
                     "--seed", "9", "--transport", "tcp"]) == 0
        tcp = capsys.readouterr().out
        digest = [line for line in inproc.splitlines()
                  if line.startswith("digest ")]
        assert digest and digest[0] in tcp
        assert "transport tcp" in tcp

    def test_load_tcp_with_trace_exits_two(self, capsys):
        assert main(["load", "--scenario", "steady", "--users", "5",
                     "--transport", "tcp", "--trace"]) == 2
        assert "--transport inproc" in capsys.readouterr().err

    def test_stats_tcp_folds_net_metrics(self, capsys):
        assert main(["stats", "--queries", "40",
                     "--transport", "tcp"]) == 0
        output = capsys.readouterr().out
        assert "net.requests" in output
        assert "net.client.requests" in output
        assert "serve.queries" in output
