"""Tests for the replicated serving layer (repro.cluster)."""

import random

import pytest

from repro.api import Dispatcher
from repro.api.envelopes import (
    BatchQueryRequest,
    BatchQueryResponse,
    DeltaRequest,
    DeltaResponse,
    PollRequest,
    PublishRequest,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    SubmitRequest,
)
from repro.cluster import Replica, ReplicationGapError, Router
from repro.rws import RelatedWebsiteSet, RwsList
from repro.serve.epoch import Epoch
from repro.serve import (
    RwsService,
    SnapshotStore,
    StaleSnapshotError,
    apply_delta,
    membership_hash,
    squash_deltas,
)


def small_list() -> RwsList:
    return RwsList(sets=[
        RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],
            service=["example-cdn.com"],
            rationales={
                "example-news.com": "Shared branding with example.com.",
                "example-cdn.com": "Asset host for example.com.",
            },
        ),
        RelatedWebsiteSet(
            primary="other.com",
            associated=["other-shop.com"],
            rationales={"other-shop.com": "Affiliated storefront."},
        ),
    ])


def grown_list() -> RwsList:
    rws_list = small_list()
    rws_list.sets[0].associated.append("example-mail.com")
    rws_list.sets[0].rationales["example-mail.com"] = "Webmail brand."
    rws_list.sets.append(RelatedWebsiteSet(
        primary="new.com", associated=["new-blog.com"],
        rationales={"new-blog.com": "Same publisher."},
    ))
    return rws_list


def shrunk_list() -> RwsList:
    rws_list = grown_list()
    del rws_list.sets[1]  # other.com's set is withdrawn
    return rws_list


@pytest.fixture()
def primary():
    service = RwsService(workers=2)
    service.publish(small_list())
    yield service
    service.queue.shutdown()


class TestReplica:
    def test_boots_from_current_epoch(self, primary):
        replica = Replica(0, primary)
        assert replica.version == 1
        assert replica.epoch is primary.epoch
        assert replica.query("example.com", "example-news.com").related

    def test_catches_up_by_delta(self, primary):
        router = Router(primary, replicas=1)
        replica = router.replicas[0]
        router.publish(grown_list())
        assert replica.version == 2
        assert replica.epoch is not primary.epoch  # its own compilation
        assert replica.epoch.content_hash == primary.epoch.content_hash
        assert replica.query("new.com", "new-blog.com").related

    def test_lag_delays_catch_up(self, primary):
        router = Router(primary, replicas=1, lag=3)
        replica = router.replicas[0]
        router.publish(grown_list())
        assert replica.version == 1  # broadcast pending, not applied
        assert replica.lagging
        assert not replica.query("new.com", "new-blog.com").related
        router.advance(2)
        assert replica.version == 1  # still inside the lag window
        router.advance(3)
        assert replica.version == 2
        assert not replica.lagging
        assert replica.query("new.com", "new-blog.com").related

    def test_lagging_replica_squashes_the_hop_chain(self, primary):
        router = Router(primary, replicas=1, lag=5)
        replica = router.replicas[0]
        router.publish(grown_list())
        router.advance(1)
        router.publish(shrunk_list())
        assert replica.version == 1
        assert replica.pending_updates == 2
        router.converge()
        # Two broadcast hops, one squashed application.
        assert replica.version == 3
        assert replica.catch_ups == 1
        assert replica.deltas_applied == 2
        assert replica.epoch.content_hash == primary.epoch.content_hash
        assert not replica.query("other.com", "other-shop.com").related

    def test_sync_does_not_ratchet_the_clock(self, primary):
        # Draining via converge() must not advance the logical clock:
        # a synced replica still owes its full lag on the next publish.
        router = Router(primary, replicas=1, lag=3)
        replica = router.replicas[0]
        router.publish(grown_list())
        router.converge()
        assert replica.version == 2
        router.publish(shrunk_list())
        assert replica.version == 2  # still lagging, not instant
        assert replica.lagging
        router.advance(3)
        assert replica.version == 3

    def test_repeat_unresolvable_hosts_skip_the_psl_walk(self):
        # The shim caches the failure *bit* (the PSL never caches
        # failures), so junk repeats stay cheap and error-counted once.
        from repro.psl import PublicSuffixList

        psl = PublicSuffixList()
        service = RwsService(psl=psl)
        service.publish(small_list())
        try:
            assert service.resolve_host("bad..host") is None
            errors_after_first = psl.cache_stats()["errors"]
            assert service.resolve_host("bad..host") is None
            assert service.resolve_hosts(["bad..host", "bad..host"]) \
                == [None, None]
            # No further PSL walks for the repeats...
            assert psl.cache_stats()["errors"] == errors_after_first
            stats = service.stats
            # ...which count as hits (one miss, one error — the first).
            assert stats.resolver_misses == 1
            assert stats.resolver_errors == 1
            assert stats.resolver_hits == 3
        finally:
            service.queue.shutdown()

    def test_deduplicated_republish_broadcasts_nothing(self, primary):
        router = Router(primary, replicas=2, lag=4)
        router.publish(small_list())  # identical content
        assert all(not replica.lagging for replica in router.replicas)
        assert router.replica_versions() == [1, 1]

    def test_epoch_swap_is_atomic_for_readers(self, primary):
        router = Router(primary, replicas=1, lag=1)
        replica = router.replicas[0]
        captured = replica.epoch
        router.publish(grown_list())
        router.converge()
        # The captured epoch still serves its original, consistent view.
        assert captured.version == 1
        assert not captured.index.related("new.com", "new-blog.com")
        assert replica.epoch.version == 2


class TestSquashDeltas:
    @staticmethod
    def _store_with(*lists) -> SnapshotStore:
        store = SnapshotStore()
        for rws_list in lists:
            store.publish(rws_list)
        return store

    def test_squashed_equals_chained_and_direct(self):
        store = self._store_with(small_list(), grown_list(), shrunk_list())
        chain = [store.delta(1, 2), store.delta(2, 3)]
        squashed = squash_deltas(chain)
        assert squashed.from_version == 1 and squashed.to_version == 3

        chained = apply_delta(apply_delta(small_list(), chain[0]), chain[1])
        via_squash = apply_delta(small_list(), squashed)
        direct = apply_delta(small_list(), store.delta(1, 3))
        target = store.get(3).content_hash
        assert membership_hash(chained) == target
        assert membership_hash(via_squash) == target
        assert membership_hash(direct) == target

    def test_add_then_remove_cancels(self):
        # v2 adds a set, v3 removes it again: the squashed delta is a
        # no-op on membership.
        store = self._store_with(small_list(), grown_list())
        v3 = small_list()
        v3.sets[0].associated.append("example-mail.com")
        v3.sets[0].rationales["example-mail.com"] = "Webmail brand."
        del v3.sets[2:]  # drop new.com again
        store.publish(v3)
        squashed = squash_deltas([store.delta(1, 2), store.delta(2, 3)])
        assert "new.com" not in squashed.diff.added_sets
        assert "new.com" not in squashed.diff.removed_sets
        assert not any(r.set_primary == "new.com"
                       for r in squashed.diff.added_members)
        patched = apply_delta(small_list(), squashed)
        assert membership_hash(patched) == store.get(3).content_hash

    def test_remove_then_readd_is_a_change_not_a_removal(self):
        # other.com is withdrawn in v2 and resubmitted (grown) in v3:
        # from v1's point of view the set never left.
        v2 = small_list()
        del v2.sets[1]
        v3 = small_list()
        v3.sets[1].associated.append("other-blog.com")
        v3.sets[1].rationales["other-blog.com"] = "Same shop."
        store = self._store_with(small_list(), v2, v3)
        squashed = squash_deltas([store.delta(1, 2), store.delta(2, 3)])
        assert "other.com" not in squashed.diff.removed_sets
        assert "other.com" not in squashed.diff.added_sets
        assert "other.com" in squashed.diff.changed_sets
        patched = apply_delta(small_list(), squashed)
        assert membership_hash(patched) == store.get(3).content_hash

    def test_single_delta_passes_through(self):
        store = self._store_with(small_list(), grown_list())
        delta = store.delta(1, 2)
        assert squash_deltas([delta]) is delta

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            squash_deltas([])

    def test_non_contiguous_chain_rejected(self):
        store = self._store_with(small_list(), grown_list(), shrunk_list())
        with pytest.raises(StaleSnapshotError, match="not contiguous"):
            squash_deltas([store.delta(1, 2), store.delta(1, 3)])

    def test_randomised_chains_converge(self):
        # Random walks over add/remove/grow edits: squashing any
        # contiguous window of the published chain must reproduce the
        # window's direct delta, membership-wise.
        rng = random.Random(7)
        for _ in range(10):
            lists = [small_list()]
            for _ in range(4):
                nxt = RwsList(sets=[
                    RelatedWebsiteSet(
                        primary=s.primary,
                        associated=list(s.associated),
                        service=list(s.service),
                        cctlds={k: list(v) for k, v in s.cctlds.items()},
                        rationales=dict(s.rationales),
                    ) for s in lists[-1].sets
                ])
                action = rng.choice(["grow", "drop", "add_set"])
                if action == "grow":
                    target = rng.choice(nxt.sets)
                    site = f"member-{rng.randrange(1000)}.com"
                    target.associated.append(site)
                    target.rationales[site] = "Random growth."
                elif action == "drop" and len(nxt.sets) > 1:
                    del nxt.sets[rng.randrange(len(nxt.sets))]
                else:
                    n = rng.randrange(1000)
                    nxt.sets.append(RelatedWebsiteSet(
                        primary=f"set-{n}.com",
                        associated=[f"set-{n}-blog.com"],
                        rationales={f"set-{n}-blog.com": "Random set."},
                    ))
                lists.append(nxt)
            store = SnapshotStore()
            for rws_list in lists:
                store.publish(rws_list)
            versions = store.versions()
            start = rng.choice(versions[:-1])
            chain = [store.delta(v, v + 1)
                     for v in range(start, versions[-1])]
            squashed = squash_deltas(chain)
            base = lists[start - 1]
            patched = apply_delta(base, squashed)
            assert membership_hash(patched) == store.get(
                versions[-1]).content_hash


class TestLossTolerantCatchUp:
    """Replica.receive() hardened against a lossy transport."""

    def test_version_gap_raises_structured_error(self, primary):
        primary.publish(grown_list())   # v2
        replica = Replica(7, primary)   # boots at v2
        primary.publish(shrunk_list())  # v3
        more = shrunk_list()
        more.sets.append(RelatedWebsiteSet(
            primary="late.com", associated=["late-blog.com"],
            rationales={"late-blog.com": "Same publisher."},
        ))
        primary.publish(more)           # v4
        # Hop 2→3 is lost; only 3→4 arrives.  Applying it would
        # misrepresent membership, so catch-up must refuse loudly.
        replica.receive(primary.store.delta(3, 4), published_clock=0)
        with pytest.raises(ReplicationGapError) as excinfo:
            replica.sync()
        error = excinfo.value
        assert error.replica_id == 7
        assert error.have_version == 2
        assert error.need_version == 3
        assert isinstance(error, StaleSnapshotError)
        assert replica.version == 2  # nothing was misapplied
        # The documented recovery: a full-snapshot resync.
        assert replica.resync()
        assert replica.version == 4
        assert replica.resyncs == 1
        assert replica.epoch.content_hash == primary.epoch.content_hash

    def test_duplicate_and_stale_hops_are_skipped(self, primary):
        replica = Replica(0, primary)
        primary.publish(grown_list())
        delta = primary.store.delta(1, 2)
        for _ in range(3):  # the transport redelivers the same hop
            replica.receive(delta, published_clock=0)
        assert replica.sync()
        assert replica.version == 2
        assert replica.duplicates_ignored == 2
        # A stale redelivery after convergence is also ignored.
        replica.receive(delta, published_clock=0)
        assert not replica.sync()
        assert replica.version == 2
        assert replica.duplicates_ignored == 3

    def test_shuffled_duplicated_chains_match_squash_and_direct(self,
                                                                primary):
        # Property: however a complete hop chain arrives — shuffled,
        # with duplicates — the converged epoch must be byte-identical
        # to squashing the chain, to the direct store delta, and to
        # adopting the snapshot outright.
        rng = random.Random(13)
        lists = [grown_list(), shrunk_list()]
        for n in range(3):
            nxt = shrunk_list()
            nxt.sets.append(RelatedWebsiteSet(
                primary=f"wave-{n}.com",
                associated=[f"wave-{n}-blog.com"],
                rationales={f"wave-{n}-blog.com": "Random growth."},
            ))
            lists.append(nxt)
        for rws_list in lists:
            primary.publish(rws_list)
        last = primary.store.latest.version
        target_hash = primary.store.get(last).content_hash
        hops = [primary.store.delta(v, v + 1) for v in range(1, last)]
        for trial in range(8):
            chain = list(hops)
            chain.extend(rng.choice(hops)
                         for _ in range(rng.randrange(1, 4)))
            rng.shuffle(chain)
            shuffled = Replica(trial, primary)
            shuffled._epoch = Epoch.compile(primary.store.get(1),
                                            primary.psl)
            for hop in chain:
                shuffled.receive(hop, published_clock=0)
            assert shuffled.sync()
            assert shuffled.version == last
            assert shuffled.epoch.content_hash == target_hash
        direct = Replica(100, primary)
        direct._epoch = Epoch.compile(primary.store.get(1), primary.psl)
        direct.receive(primary.store.delta(1, last), published_clock=0)
        direct.sync()
        assert direct.epoch.content_hash == target_hash
        adopted = Replica(101, primary)
        adopted.adopt(primary.store.get(last))
        assert adopted.epoch.content_hash == target_hash


class TestDegradedMembership:
    """Routing, batching, and stats while the replica set shrinks."""

    @staticmethod
    def _chaos_router(primary, *, replicas, leaves, policy="rendezvous"):
        from repro.chaos import ChaosRouter, FaultPlan

        plan = FaultPlan(name="degraded", leaves=leaves)
        return ChaosRouter(primary, replicas=replicas, plan=plan,
                           policy=policy)

    def test_rendezvous_rehomes_keys_after_a_leave(self, primary):
        pairs = [(f"site-{i}.com", "example.com") for i in range(24)]
        router = self._chaos_router(primary, replicas=3,
                                    leaves=((1, 10, -1),))
        before = Router(primary, replicas=3, policy="rendezvous")
        before.related_batch(pairs)
        loser = before.replicas[1].stats.queries
        assert loser > 0  # replica 1 owned some keys pre-leave
        router.advance(10)
        reference = primary.related_batch(pairs)
        assert router.related_batch(pairs) == reference
        counts = [replica.stats.queries for replica in router.replicas]
        assert counts[1] == 0  # never routed to the offline node
        assert counts[0] > 0 and counts[2] > 0
        # Orphaned keys rehome by content: same split on every ask.
        router.related_batch(pairs)
        assert [r.stats.queries for r in router.replicas] == [
            2 * counts[0], 0, 2 * counts[2]]

    def test_batches_reassemble_with_one_replica_left(self, primary):
        pairs = [("example.com", "example-news.com"),
                 ("other.com", "example.com"),
                 ("other-shop.com", "other.com"),
                 ("stranger.org", "example.com"),
                 ("example-cdn.com", "example.com")] * 4
        router = self._chaos_router(primary, replicas=3,
                                    leaves=((1, 1, -1), (2, 1, -1)))
        router.advance(1)
        assert [r.replica_id for r in router._read_replicas()] == [0]
        expected = primary.related_batch(pairs)
        assert router.related_batch(pairs) == expected
        assert [v.related for v in router.query_batch(pairs)] == expected
        assert router.replicas[0].stats.queries == len(pairs) * 2
        assert router.replicas[1].stats.queries == 0
        assert router.replicas[2].stats.queries == 0

    def test_stats_report_spans_membership_changes(self, primary):
        router = self._chaos_router(primary, replicas=3,
                                    leaves=((2, 8, -1),))
        for _ in range(6):
            router.query("example.com", "example-news.com")
        full = router.stats_report()
        assert full["replicas"] == 3
        assert full["active_replicas"] == 3
        served_before = full["queries"]
        router.advance(8)  # replica 2 leaves mid-capture-interval
        for _ in range(4):
            router.query("other.com", "other-shop.com")
        router.advance(16)  # availability integrates the degraded span
        degraded = router.stats_report()
        # The offline replica's served counters never vanish from the
        # merged report, and the active gauge reports the shrunk set.
        assert degraded["replicas"] == 3
        assert degraded["active_replicas"] == 2
        assert degraded["queries"] == served_before + 4
        assert degraded["chaos_leaves"] == 1
        assert 0 < degraded["availability"] < 1


class TestRouter:
    def test_round_robin_spreads_queries(self, primary):
        router = Router(primary, replicas=3, policy="round-robin")
        for _ in range(12):
            router.query("example.com", "example-news.com")
        counts = [replica.stats.queries for replica in router.replicas]
        assert counts == [4, 4, 4]

    def test_rendezvous_pins_a_key_to_one_replica(self, primary):
        router = Router(primary, replicas=3, policy="rendezvous")
        for _ in range(9):
            router.query("example.com", "example-news.com")
        counts = [replica.stats.queries for replica in router.replicas]
        assert sorted(counts) == [0, 0, 9]

    def test_rendezvous_batches_split_but_answers_stay_ordered(self,
                                                               primary):
        pairs = [("example.com", "example-news.com"),
                 ("other.com", "example.com"),
                 ("other-shop.com", "other.com"),
                 ("stranger.org", "example.com"),
                 ("example-cdn.com", "example.com")] * 3
        router = Router(primary, replicas=3, policy="rendezvous")
        reference = RwsService()
        reference.publish(small_list())
        try:
            expected = reference.related_batch(pairs)
            assert router.related_batch(pairs) == expected
            assert ([v.related for v in router.query_batch(pairs)]
                    == expected)
            # More than one replica actually served the split batch.
            served = [r for r in router.replicas if r.stats.queries]
            assert len(served) > 1
        finally:
            reference.queue.shutdown()

    def test_rendezvous_routing_is_batching_invariant(self, primary):
        # The same pair must land on the same replica whether it
        # arrives alone or inside any batch — the property stale
        # digests rest on.
        pairs = [(f"site-{i}.com", "example.com") for i in range(20)]
        router = Router(primary, replicas=3, policy="rendezvous")
        router.related_batch(pairs)
        whole = [replica.stats.queries for replica in router.replicas]
        router2 = Router(primary, replicas=3, policy="rendezvous")
        for pair in pairs:
            router2.related_batch([pair])
        split = [replica.stats.queries for replica in router2.replicas]
        assert whole == split

    def test_writes_pin_to_primary(self, primary):
        router = Router(primary, replicas=2)
        snapshot = router.publish(grown_list())
        assert primary.current_snapshot is snapshot
        delta = router.delta_since(1)
        assert delta.to_version == 2
        ticket = router.submit(small_list().sets[0])
        assert router.drain(timeout=30)
        assert router.poll(ticket).terminal
        assert router.queue is primary.queue

    def test_invalid_configuration_rejected(self, primary):
        with pytest.raises(ValueError, match="replicas"):
            Router(primary, replicas=0)
        with pytest.raises(ValueError, match="policy"):
            Router(primary, replicas=2, policy="coin-flip")
        with pytest.raises(ValueError, match="lag values"):
            Router(primary, replicas=2, lag=[1, 2, 3])

    def test_cluster_stats_report_merges_all_nodes(self, primary):
        router = Router(primary, replicas=2, policy="round-robin")
        router.query("example.com", "example-news.com")
        router.query("other.com", "other-shop.com")
        primary.query("example.com", "other.com")
        report = router.stats_report()
        assert report["queries"] == 3
        assert report["replicas"] == 2
        assert report["epoch"] == 1
        assert report["replica_epoch_min"] == 1
        assert report["replica_epoch_max"] == 1
        assert report["queue_submitted"] == 0


class TestDispatcherOverRouter:
    """The Dispatcher accepts a Router anywhere it took an RwsService."""

    @pytest.fixture()
    def router(self, primary):
        return Router(primary, replicas=3, lag=2, policy="rendezvous")

    @pytest.fixture()
    def dispatcher(self, router):
        return Dispatcher(router)

    def test_query_routes_through_replicas(self, router, dispatcher):
        response = dispatcher.dispatch(
            QueryRequest("www.example.com", "example-news.com"))
        assert type(response) is QueryResponse
        assert response.verdict.related
        assert sum(r.stats.queries for r in router.replicas) == 1

    def test_publish_then_stale_then_converged_reads(self, router,
                                                     dispatcher):
        publish = dispatcher.dispatch(PublishRequest(rws_list=grown_list()))
        assert publish.version == 2
        stale = dispatcher.dispatch(BatchQueryRequest(
            pairs=[("new.com", "new-blog.com")] * 3, detail=False))
        assert type(stale) is BatchQueryResponse
        assert stale.related == [False, False, False]  # replicas lag
        router.converge()
        fresh = dispatcher.dispatch(BatchQueryRequest(
            pairs=[("new.com", "new-blog.com")] * 3, detail=False))
        assert fresh.related == [True, True, True]

    def test_delta_submit_poll_and_stats_envelopes(self, router,
                                                   dispatcher):
        dispatcher.dispatch(PublishRequest(rws_list=grown_list()))
        delta = dispatcher.dispatch(DeltaRequest(from_version=1))
        assert type(delta) is DeltaResponse
        assert delta.delta.to_version == 2
        ticket = dispatcher.dispatch(SubmitRequest(
            rws_set=RelatedWebsiteSet(
                primary="fresh.com", associated=["fresh-shop.com"],
                rationales={"fresh-shop.com": "Same operator."},
            ))).ticket
        router.drain(timeout=30)
        poll = dispatcher.dispatch(PollRequest(ticket=ticket))
        assert poll.terminal and poll.passed
        stats = dispatcher.dispatch(StatsRequest())
        assert stats.report["replicas"] == 3
        assert stats.report["epoch"] == 2
        assert stats.report["replica_epoch_min"] == 1  # still lagging
