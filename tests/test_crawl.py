"""Tests for the measurement-crawling subsystem."""

import pytest

from repro.crawl import (
    CrawlStatus,
    LivenessChecker,
    SiteSurvey,
    detect_language,
)
from repro.data.builders import survey_eligible_sites
from repro.netsim import Client, Response, SyntheticWeb


class TestLanguageDetection:
    def test_lang_attribute_wins(self):
        assert detect_language('<html lang="de"><body>text</body></html>') \
            == "de"

    def test_regional_tag_normalised(self):
        assert detect_language('<html lang="en-GB"><body>x</body></html>') \
            == "en"

    def test_stopword_fallback_english(self):
        html = ("<html><body><p>The report covers the state of the Web "
                "and the changes that are coming to it this year, with "
                "more detail about the plans for the future.</p></body>"
                "</html>")
        assert detect_language(html) == "en"

    def test_stopword_fallback_german(self):
        html = ("<html><body><p>Der Bericht ist eine Übersicht über die "
                "Lage und die Pläne für das nächste Jahr, mit mehr "
                "Informationen über die Zukunft und nicht nur über das "
                "Web.</p></body></html>")
        assert detect_language(html) == "de"

    def test_unknown_for_garbage(self):
        assert detect_language("<html><body>zzz qqq</body></html>") \
            == "unknown"
        assert detect_language("") == "unknown"

    def test_invalid_lang_attribute_falls_through(self):
        html = '<html lang="???"><body>the of and to in is for</body></html>'
        assert detect_language(html) == "en"


class TestLivenessChecker:
    @pytest.fixture()
    def web(self) -> SyntheticWeb:
        web = SyntheticWeb(seed=5)
        web.set_page("alive.com", "/",
                     '<html lang="en"><body>hello</body></html>')
        web.add_host("broken.com")
        web.set_response("broken.com", "/", Response(status=410, body="gone"))
        return web

    def test_live_site(self, web):
        checker = LivenessChecker(client=Client(web))
        result = checker.check("alive.com")
        assert result.is_live
        assert result.http_status == 200
        assert "hello" in result.body

    def test_nxdomain_not_retried(self, web):
        checker = LivenessChecker(client=Client(web))
        result = checker.check("gone.example")
        assert result.status is CrawlStatus.DEAD_NXDOMAIN
        assert result.attempts == 1

    def test_http_error(self, web):
        checker = LivenessChecker(client=Client(web))
        result = checker.check("broken.com")
        assert result.status is CrawlStatus.DEAD_HTTP_ERROR
        assert result.http_status == 410

    def test_transient_failure_retried_to_budget(self, web):
        web.resolver.register("flaky.example")
        web.resolver.set_failing("flaky.example")
        checker = LivenessChecker(client=Client(web), max_attempts=3)
        result = checker.check("flaky.example")
        assert result.status is CrawlStatus.DEAD_TIMEOUT
        assert result.attempts == 3

    def test_5xx_retried_then_succeeds_or_fails_deterministically(self):
        web = SyntheticWeb(seed=2)
        web.add_host("sometimes.com", error_rate=0.7)
        web.set_page("sometimes.com", "/", "<html><body>up</body></html>")
        checker = LivenessChecker(client=Client(web), max_attempts=5)
        result = checker.check("sometimes.com")
        assert result.attempts >= 1
        assert result.status in (CrawlStatus.LIVE,
                                 CrawlStatus.DEAD_HTTP_ERROR)

    def test_results_cached(self, web):
        checker = LivenessChecker(client=Client(web))
        first = checker.check("alive.com")
        requests_after_first = len(web.request_log)
        second = checker.check("alive.com")
        assert first is second
        assert len(web.request_log) == requests_after_first

    def test_check_many(self, web):
        checker = LivenessChecker(client=Client(web))
        results = checker.check_many(["alive.com", "broken.com"])
        assert results["alive.com"].is_live
        assert not results["broken.com"].is_live


class TestSurveyFilterPipeline:
    def test_crawl_reproduces_catalog_eligibility(self, rws_list, web_client):
        """The crawl-driven filter must agree with the catalog metadata:
        the paper's 146 -> 31 reduction, derived from pages alone."""
        survey = SiteSurvey(client=web_client)
        outcome = survey.filter_list(rws_list)

        metadata_eligible = {
            spec.domain
            for specs in survey_eligible_sites().values()
            for spec in specs
        }
        assert set(outcome.eligible_sites) == metadata_eligible
        assert len(outcome.eligible_sites) == 31
        assert len(outcome.eligible_by_set) == 11
        assert outcome.within_set_pair_count == 39

    def test_dead_sites_classified(self, rws_list, web_client):
        outcome = SiteSurvey(client=web_client).filter_list(rws_list)
        assert not outcome.liveness["trackmetrica.com"].is_live
        assert not outcome.liveness["globalsoftix.com"].is_live

    def test_language_detected_from_pages(self, rws_list, web_client):
        outcome = SiteSurvey(client=web_client).filter_list(rws_list)
        assert outcome.languages["bild.de"] == "de"
        assert outcome.languages["cafemedia.com"] == "en"

    def test_candidates_cover_primaries_and_associated(self, rws_list,
                                                       web_client):
        outcome = SiteSurvey(client=web_client).filter_list(rws_list)
        expected = sum(1 + len(s.associated) for s in rws_list)
        assert len(outcome.candidates) == expected
