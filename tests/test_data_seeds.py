"""Calibration tests: the reconstructed datasets must match every
aggregate the paper reports about the 2024-03-26 list."""

import statistics

from repro.categorize import Category
from repro.data import (
    RWS_SEED_SETS,
    TOP_LIST_SIZE,
    build_top_list,
)
from repro.data.builders import survey_eligible_sites
from repro.rws.model import SiteRole
from repro.strmetrics import levenshtein_distance


class TestListComposition:
    def test_41_sets(self, rws_list):
        assert len(rws_list) == 41

    def test_member_counts(self, rws_list):
        composition = rws_list.composition()
        assert composition[SiteRole.ASSOCIATED] == 108
        assert composition[SiteRole.SERVICE] == 14
        assert composition[SiteRole.CCTLD] == 10

    def test_subset_prevalence(self, rws_list):
        total = len(rws_list)
        with_associated = sum(1 for s in rws_list if s.associated)
        with_service = sum(1 for s in rws_list if s.service)
        with_cctld = sum(1 for s in rws_list if s.cctld_sites)
        assert round(100 * with_associated / total, 1) == 92.7
        assert round(100 * with_service / total, 1) == 22.0
        assert round(100 * with_cctld / total, 1) == 14.6

    def test_mean_associated_per_set(self, rws_list):
        mean = rws_list.composition()[SiteRole.ASSOCIATED] / len(rws_list)
        assert abs(mean - 2.6) < 0.1

    def test_no_duplicate_members_across_sets(self, rws_list):
        assert rws_list.duplicate_members() == []

    def test_every_member_is_etld_plus_one(self, rws_list, psl):
        for record in rws_list.all_members():
            assert psl.is_etld_plus_one(record.site), record.site

    def test_paper_named_members_present(self, rws_list):
        # Every set/member the paper names must exist, with the right
        # relations.
        assert rws_list.related("timesinternet.in", "indiatimes.com")
        assert rws_list.related("bild.de", "autobild.de")
        assert rws_list.related("bild.de", "computerbild.de")
        assert rws_list.related("ya.ru", "webvisor.com")
        assert rws_list.related("poalim.site", "poalim.xyz")
        assert rws_list.related("cafemedia.com", "nourishingpursuits.com")

    def test_rationales_present_for_non_primary_members(self, rws_list):
        for rws_set in rws_list:
            for site in rws_set.associated + rws_set.service:
                assert rws_set.rationales.get(site), (rws_set.primary, site)


class TestFigure3Calibration:
    def test_edit_distance_profile(self, rws_list, psl):
        distances = []
        for record in rws_list.members_with_role(SiteRole.ASSOCIATED):
            member = psl.second_level_label(record.site)
            primary = psl.second_level_label(record.set_primary)
            distances.append(levenshtein_distance(member, primary))
        assert len(distances) == 108
        identical = sum(1 for d in distances if d == 0)
        assert round(100 * identical / len(distances), 1) == 9.3
        assert statistics.median(distances) == 7.0

    def test_paper_distance_examples(self, psl):
        # autobild.de shares a component with bild.de;
        # nourishingpursuits.com is entirely distinct from cafemedia.com.
        shared = levenshtein_distance("autobild", "bild")
        distinct = levenshtein_distance("nourishingpursuits", "cafemedia")
        assert shared < distinct


class TestSurveyEligibility:
    def test_31_eligible_sites_over_11_sets(self):
        eligible = survey_eligible_sites()
        sites = sum(len(specs) for specs in eligible.values())
        assert sites == 31
        assert len(eligible) == 11

    def test_within_set_pairs_total_39(self):
        eligible = survey_eligible_sites()
        pairs = sum(len(specs) * (len(specs) - 1) // 2
                    for specs in eligible.values())
        assert pairs == 39

    def test_eligible_sites_are_live_english(self, catalog):
        for specs in survey_eligible_sites().values():
            for spec in specs:
                assert spec.live and spec.language == "en"


class TestHistorySeed:
    def test_final_snapshot_is_the_list(self, rws_history, rws_list):
        final = rws_history.latest.rws_list
        assert len(final) == len(rws_list)
        assert final.composition() == rws_list.composition()

    def test_growth_is_monotone(self, rws_history):
        series = rws_history.composition_series()
        months = sorted(series)
        for role in SiteRole:
            values = [series[m][role] for m in months]
            assert values == sorted(values), role

    def test_window_spans_paper_months(self, rws_history):
        months = rws_history.monthly_dates()
        assert months[0] == "2023-01"
        assert months[-1] == "2024-03"


class TestCategoryShape:
    def test_primary_categories_match_figure8_shape(self, rws_list,
                                                    category_db):
        counts: dict[Category, int] = {}
        for primary in rws_list.primaries():
            category = category_db.category(primary)
            counts[category] = counts.get(category, 0) + 1
        # News and media is the largest category (the paper's headline
        # observation about Figure 8).
        assert counts[Category.NEWS_AND_MEDIA] == max(counts.values())
        assert sum(counts.values()) == 41
        assert counts.get(Category.UNKNOWN, 0) > 0

    def test_analytics_in_a_set(self, rws_list, category_db):
        # ya.ru's set contains analytics infrastructure (webvisor.com).
        ya_set = rws_list.find_set_for("ya.ru")
        member_categories = {category_db.category(s) for s in ya_set.members()}
        assert Category.ANALYTICS_INFRASTRUCTURE in member_categories


class TestTopList:
    def test_size(self):
        assert len(build_top_list()) == TOP_LIST_SIZE == 200

    def test_unique_live_english(self):
        specs = build_top_list()
        domains = [spec.domain for spec in specs]
        assert len(set(domains)) == 200
        assert all(spec.live and spec.language == "en" for spec in specs)

    def test_disjoint_from_rws_seeds(self):
        rws_domains = {
            spec.domain for seed in RWS_SEED_SETS for spec in seed.all_specs()
        }
        top_domains = {spec.domain for spec in build_top_list()}
        assert not (rws_domains & top_domains)

    def test_all_categorised(self, category_db):
        for spec in build_top_list():
            assert category_db.category(spec.domain) is not Category.UNKNOWN

    def test_deterministic(self):
        first = [spec.domain for spec in build_top_list()]
        second = [spec.domain for spec in build_top_list()]
        assert first == second


class TestCatalog:
    def test_covers_all_seed_and_top_sites(self, catalog):
        for seed in RWS_SEED_SETS:
            for spec in seed.all_specs():
                assert spec.domain in catalog
        for spec in build_top_list():
            assert spec.domain in catalog

    def test_conflicting_spec_rejected(self, catalog):
        import pytest

        from repro.data.sites import SiteSpec
        spec = catalog.specs()[0]
        conflicting = SiteSpec(domain=spec.domain, organization="Other Org",
                               brand="Other")
        with pytest.raises(ValueError):
            catalog.add(conflicting)

    def test_require_raises_for_missing(self, catalog):
        import pytest
        with pytest.raises(KeyError):
            catalog.require("definitely-not-present.example")
