"""Tests for the Disconnect entities-list substrate and §5 comparison."""

import pytest

from repro.disconnect import (
    EntitiesList,
    Entity,
    build_entities_list,
    compare_with_rws,
    parse_entities_json,
    serialize_entities_json,
)
from repro.disconnect.parse import EntitiesSchemaError

SAMPLE = """
{
  "entities": {
    "Example Org": {
      "properties": ["example.com", "example-news.com"],
      "resources": ["examplecdn.net"]
    },
    "Solo Corp": {
      "properties": ["solo.com"]
    }
  }
}
"""


class TestModel:
    def test_domains_deduplicated(self):
        entity = Entity(name="X", properties=("a.com", "b.com"),
                        resources=("b.com", "c.net"))
        assert entity.domains() == ("a.com", "b.com", "c.net")

    def test_entity_for_exact_and_subdomain(self):
        entities = EntitiesList(entities=[
            Entity(name="X", properties=("example.com",)),
        ])
        assert entities.entity_for("example.com").name == "X"
        assert entities.entity_for("deep.sub.example.com").name == "X"
        assert entities.entity_for("other.com") is None

    def test_same_entity(self):
        entities = EntitiesList(entities=[
            Entity(name="X", properties=("a.com",), resources=("acdn.net",)),
            Entity(name="Y", properties=("b.com",)),
        ])
        assert entities.same_entity("a.com", "acdn.net")
        assert not entities.same_entity("a.com", "b.com")
        assert not entities.same_entity("a.com", "nowhere.net")

    def test_ownership_is_exclusive(self):
        entities = EntitiesList(entities=[
            Entity(name="X", properties=("a.com",)),
        ])
        with pytest.raises(ValueError):
            entities.add(Entity(name="Y", properties=("a.com",)))
        # Failed add must not leave a partial entry behind.
        assert len(entities) == 1

    def test_domain_count(self):
        entities = EntitiesList(entities=[
            Entity(name="X", properties=("a.com", "b.com")),
        ])
        assert entities.domain_count() == 2


class TestWireFormat:
    def test_parse(self):
        entities = parse_entities_json(SAMPLE)
        assert len(entities) == 2
        example = entities.entity_for("example.com")
        assert example.name == "Example Org"
        assert "examplecdn.net" in example.resources
        solo = entities.entity_for("solo.com")
        assert solo.resources == ()

    def test_round_trip(self):
        entities = parse_entities_json(SAMPLE)
        text = serialize_entities_json(entities)
        reparsed = parse_entities_json(text)
        assert [e.name for e in reparsed] == [e.name for e in entities]
        assert reparsed.domain_count() == entities.domain_count()

    @pytest.mark.parametrize("bad", [
        "not json",
        "{}",
        '{"entities": []}',
        '{"entities": {"X": "oops"}}',
        '{"entities": {"X": {"properties": "a.com"}}}',
        '{"entities": {"X": {"properties": [42]}}}',
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(EntitiesSchemaError):
            parse_entities_json(bad)


class TestSnapshot:
    def test_covers_every_rws_org(self, rws_list):
        entities = build_entities_list()
        for rws_set in rws_list:
            assert entities.entity_for(rws_set.primary) is not None, \
                rws_set.primary

    def test_ownership_members_present(self):
        entities = build_entities_list()
        # Service and ccTLD members require common ownership under RWS,
        # so the ownership list contains them.
        assert entities.same_entity("ya.ru", "yastatic.net")
        assert entities.same_entity("ya.ru", "ya.by")
        assert entities.same_entity("bild.de", "bildstatic.de")

    def test_affiliation_only_members_absent(self):
        entities = build_entities_list()
        # CafeMedia's publishers are independent businesses: affiliated
        # under RWS, absent from the ownership-based entities list.
        assert not entities.same_entity("cafemedia.com",
                                        "nourishingpursuits.com")

    def test_extra_entities_are_disjoint_from_rws(self, rws_list):
        entities = build_entities_list()
        findall = entities.entity_for("findall.com")
        assert findall is not None
        for domain in findall.domains():
            assert rws_list.find_set_for(domain) is None


class TestComparison:
    def test_report_aggregates(self, rws_list):
        entities = build_entities_list()
        report = compare_with_rws(rws_list, entities)
        assert len(report.per_set) == len(rws_list)
        assert report.total_members == (
            report.covered_members + report.affiliation_only_members
        )
        # §5's point: a substantial share of RWS members (all of them
        # associated sites) are grouped by affiliation alone.
        assert report.affiliation_only_members > 0
        assert 0.3 < report.associated_affiliation_only_fraction < 0.9

    def test_affiliation_only_is_associated_only(self, rws_list):
        entities = build_entities_list()
        report = compare_with_rws(rws_list, entities)
        # Service and ccTLD members are always covered (ownership).
        assert report.affiliation_only_members == \
            report.affiliation_only_associated

    def test_cafemedia_set_detail(self, rws_list):
        entities = build_entities_list()
        report = compare_with_rws(rws_list, entities)
        cafemedia = next(c for c in report.per_set
                         if c.primary == "cafemedia.com")
        assert cafemedia.entity_name == "CafeMedia"
        assert "nourishingpursuits.com" in cafemedia.affiliation_only
        assert "cafemediaassets.net" in cafemedia.covered
