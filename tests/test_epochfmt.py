"""Tests for the zero-copy binary epoch format (repro.serve.epochfmt).

Four concerns, matching the format's claims:

* **Fidelity** — an encoded epoch must answer every
  :class:`~repro.serve.MembershipIndex` query identically to the
  compiled index it was serialized from, reconstruct a membership
  hash bit-identical to the stored content hash, and resolve PSL
  suffixes exactly like the in-memory trie.
* **Robustness** — corrupt, truncated, or foreign buffers are
  rejected with a structured :class:`~repro.serve.EpochFormatError`
  (never a crash or a silently wrong index), and a poisoned disk
  cache file heals itself.
* **Integration** — the service encodes once and caches
  (:meth:`~repro.serve.RwsService.encoded_epoch`), replicas resync
  from the primary's cached buffer instead of recompiling, and the
  workload driver's encoded fan-out leaves run digests bit-identical
  to compiled execution.
* **Scale fixtures** — the seeded synthetic list generator is
  deterministic and hits its requested domain count exactly.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster import Replica
from repro.data import (
    build_rws_list,
    build_small_synthetic_list,
    build_synthetic_list,
)
from repro.data.synthetic import SMALL_SYNTHETIC_DOMAINS, \
    build_small_synthetic_list_v2
from repro.psl import default_psl
from repro.rws import RelatedWebsiteSet, RwsList, SiteRole
from repro.serve import (
    Epoch,
    EpochDiskCache,
    EpochFormatError,
    MembershipIndex,
    RwsService,
    SnapshotStore,
    StaleSnapshotError,
    encode_epoch,
    load_epoch,
    membership_hash,
)
from repro.serve.epochfmt import epoch_stat
from repro.workload import run_serial, run_sharded


def compile_epoch(rws_list: RwsList) -> Epoch:
    snapshot = SnapshotStore().publish(rws_list)
    return Epoch.compile(snapshot, default_psl())


def tricky_list() -> RwsList:
    """A list exercising every index path: all four roles, ccTLD
    variants, and a cross-set duplicate member (first set wins)."""
    return RwsList(sets=[
        RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com", "shared.com"],
            service=["example-cdn.com"],
            cctlds={"example.com": ["example.co.uk", "example.ca"],
                    "example-news.com": ["example-news.co.uk"]},
            rationales={
                "example-news.com": "Shared branding with example.com.",
                "shared.com": "Shared branding.",
                "example-cdn.com": "Asset host for example.com.",
            },
        ),
        RelatedWebsiteSet(
            primary="other.com",
            associated=["other-shop.com", "shared.com"],
            rationales={"other-shop.com": "Affiliated storefront.",
                        "shared.com": "Also claimed here."},
        ),
    ], version="tricky-1", as_of="2024-03-26")


PROBE_SITES = ["example.com", "example-news.com", "example-cdn.com",
               "example.co.uk", "example.ca", "example-news.co.uk",
               "shared.com", "other.com", "other-shop.com",
               "missing.net", "Example.COM"]


def assert_index_equivalent(compiled, loaded, sites) -> None:
    """Every MembershipIndex API answers identically on both."""
    assert len(loaded) == len(compiled)
    assert loaded.site_count == compiled.site_count
    assert loaded.set_count == compiled.set_count
    for site in sites:
        assert (site in loaded) == (site in compiled)
        left, right = loaded.lookup(site), compiled.lookup(site)
        if right is None:
            assert left is None
        else:
            assert left is not None
            assert left.site == right.site
            assert left.role == right.role
            assert left.set_primary == right.set_primary
            assert left.variant_of == right.variant_of
        assert loaded.role_of(site) == compiled.role_of(site)
        assert loaded.primary_of(site) == compiled.primary_of(site)
        assert loaded.members_of(site) == compiled.members_of(site)
        left_set = loaded.set_for(site)
        right_set = compiled.set_for(site)
        if right_set is None:
            assert left_set is None
        else:
            assert left_set is not None
            assert left_set.primary == right_set.primary
            assert left_set.associated == right_set.associated
            assert left_set.service == right_set.service
            assert left_set.cctlds == right_set.cctlds
    pairs = [(a, b) for a in sites for b in sites]
    assert loaded.related_batch(pairs) == compiled.related_batch(pairs)
    normalized = [(a.lower(), b.lower()) for a, b in pairs]
    assert loaded.related_batch_normalized(normalized) \
        == compiled.related_batch_normalized(normalized)
    for pair in pairs:
        left_q, right_q = loaded.query(*pair), compiled.query(*pair)
        assert left_q.related == right_q.related
        assert left_q.set_primary == right_q.set_primary
        assert left_q.role_a == right_q.role_a
        assert left_q.role_b == right_q.role_b
    assert [q.related for q in loaded.query_stream(pairs)] \
        == [q.related for q in compiled.query_stream(pairs)]
    assert sorted(entry.site for entry in loaded.entries()) \
        == sorted(entry.site for entry in compiled.entries())


class TestRoundTrip:
    def test_tricky_list_full_api_equivalence(self):
        epoch = compile_epoch(tricky_list())
        loaded = Epoch.from_buffer(epoch.to_buffer())
        assert_index_equivalent(epoch.index, loaded.index, PROBE_SITES)

    def test_seed_list_full_api_equivalence(self):
        epoch = compile_epoch(build_rws_list())
        loaded = Epoch.from_buffer(epoch.to_buffer())
        sites = [entry.site for entry in epoch.index.entries()]
        sites += ["missing.example", "WWW.SONY.COM"]
        assert_index_equivalent(epoch.index, loaded.index, sites)

    def test_membership_hash_is_bit_identical(self):
        # The records section must carry enough (including cross-set
        # duplicate members) to reconstruct the exact content hash.
        for rws_list in (tricky_list(), build_rws_list(),
                         build_small_synthetic_list()):
            epoch = compile_epoch(rws_list)
            loaded = Epoch.from_buffer(epoch.to_buffer())
            assert loaded.snapshot is not None
            assert membership_hash(loaded.snapshot.rws_list) \
                == epoch.snapshot.content_hash
            assert loaded.snapshot.content_hash \
                == epoch.snapshot.content_hash
            assert loaded.snapshot.version == epoch.snapshot.version
            assert loaded.snapshot.rws_list.version == rws_list.version
            assert loaded.snapshot.rws_list.as_of == rws_list.as_of

    def test_embedded_psl_resolves_identically(self):
        epoch = compile_epoch(tricky_list())
        loaded = Epoch.from_buffer(epoch.to_buffer())
        assert loaded.psl is not epoch.psl
        for domain in ["www.example.com", "example.co.uk", "foo.ck",
                       "www.ck", "a.b.ck", "mysite.github.io",
                       "city.kawasaki.jp", "w.city.kawasaki.jp",
                       "a.city.kawasaki.jp", "example.zz", "com"]:
            assert loaded.psl._resolve_uncached(domain) \
                == epoch.psl._resolve_uncached(domain)

    def test_without_psl_section_uses_caller_psl(self):
        epoch = compile_epoch(tricky_list())
        buf = epoch.to_buffer(include_psl=False)
        assert len(buf) < len(epoch.to_buffer())
        assert not epoch_stat(buf)["has_psl"]
        loaded = Epoch.from_buffer(buf, psl=epoch.psl)
        assert loaded.psl is epoch.psl
        # Without an explicit PSL the default snapshot is used.
        assert Epoch.from_buffer(buf).psl.resolve("a.example.co.uk")

    def test_bootstrap_epoch_without_entries_round_trips(self):
        empty = Epoch.bootstrap(default_psl())
        loaded = Epoch.from_buffer(empty.to_buffer())
        assert loaded.snapshot is None
        assert len(loaded.index) == 0
        assert loaded.index.lookup("example.com") is None

    def test_stat_reports_section_counts(self):
        epoch = compile_epoch(tricky_list())
        buf = epoch.to_buffer()
        stat = epoch_stat(buf)
        assert stat["bytes"] == len(buf)
        assert stat["snapshot_version"] == 1
        assert stat["content_hash"] == epoch.snapshot.content_hash
        assert stat["list_version"] == "tricky-1"
        assert stat["as_of"] == "2024-03-26"
        assert stat["has_psl"] and stat["has_snapshot"]
        assert stat["entries"] == len(epoch.index)
        assert stat["sets"] == 2
        assert stat["records"] >= stat["entries"]  # duplicates kept
        assert stat["rules"] > 0 and stat["trie_nodes"] > 0

    def test_buffer_is_plain_bytes_and_reusable(self):
        buf = compile_epoch(tricky_list()).to_buffer()
        assert isinstance(buf, bytes)
        # Loading twice from the same buffer is independent.
        one = Epoch.from_buffer(buf)
        two = Epoch.from_buffer(memoryview(buf))
        assert one.index.members_of("example.com") \
            == two.index.members_of("example.com")


class TestRandomizedEquivalence:
    """Fuzzed three-way differential: buffer == compiled == naive."""

    @staticmethod
    def random_list(rng: random.Random) -> RwsList:
        sets = []
        for set_idx in range(rng.randint(1, 6)):
            base = f"fuzz{set_idx}"
            associated = [f"{base}-a{i}.com"
                          for i in range(rng.randint(0, 3))]
            service = [f"{base}-s{i}.net"
                       for i in range(rng.randint(0, 2))]
            cctlds = {}
            if associated and rng.random() < 0.5:
                cctlds[associated[0]] = \
                    [associated[0].replace(".com", ".co.uk")]
            if rng.random() < 0.3 and set_idx:
                associated.append("fuzz0-a0.com")  # cross-set duplicate
            sets.append(RelatedWebsiteSet(
                primary=f"{base}.com", associated=associated,
                service=service, cctlds=cctlds,
                rationales={m: "fuzzed" for m in associated + service},
            ))
        return RwsList(sets=sets, version=f"fuzz-{rng.random():.6f}")

    def test_fuzzed_lists_round_trip(self):
        for seed in range(25):
            rng = random.Random(seed)
            rws_list = self.random_list(rng)
            epoch = compile_epoch(rws_list)
            loaded = Epoch.from_buffer(epoch.to_buffer(include_psl=False),
                                       psl=epoch.psl)
            sites = sorted({record.site for rws_set in rws_list
                            for record in rws_set.member_records()})
            probe = sites + ["absent.example"]
            assert_index_equivalent(epoch.index, loaded.index, probe)
            # Naive ground truth on a site sample.  Cross-set duplicate
            # members are excluded: the list scan answers from the
            # queried side's set while the index is first-wins per
            # site, so the two only agree on (valid) duplicate-free
            # pairs — the index/buffer equivalence above still covers
            # duplicates.
            duplicated = set(rws_list.duplicate_members())
            clean = [site for site in probe if site not in duplicated]
            sample = rng.sample(clean, min(6, len(clean)))
            for a in sample:
                for b in sample:
                    assert loaded.index.related(a, b) \
                        == rws_list.related(a, b)
            assert membership_hash(loaded.snapshot.rws_list) \
                == epoch.snapshot.content_hash


class TestCorruptionRejection:
    def setup_method(self):
        self.buf = compile_epoch(tricky_list()).to_buffer()

    def test_truncated_buffer_rejected(self):
        for cut in (0, 3, 10, 80, 200, len(self.buf) - 1):
            with pytest.raises(EpochFormatError):
                load_epoch(self.buf[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(EpochFormatError) as excinfo:
            load_epoch(self.buf + b"\x00\x00\x00\x00")
        assert "length" in str(excinfo.value)

    def test_bad_magic_rejected(self):
        mangled = b"NOPE" + self.buf[4:]
        with pytest.raises(EpochFormatError) as excinfo:
            load_epoch(mangled)
        assert "magic" in str(excinfo.value)

    def test_unknown_format_version_rejected(self):
        mangled = bytearray(self.buf)
        mangled[4] = 0xFF  # format_version u16 little-endian low byte
        with pytest.raises(EpochFormatError) as excinfo:
            load_epoch(bytes(mangled))
        assert "version" in str(excinfo.value)

    def test_single_byte_flips_never_crash(self):
        # Any single-byte corruption must surface as EpochFormatError
        # (the CRC trailer catches what structural checks miss) —
        # never an IndexError, struct.error, or a silently wrong load.
        rng = random.Random(7)
        offsets = rng.sample(range(len(self.buf)), 64)
        for offset in offsets:
            mangled = bytearray(self.buf)
            mangled[offset] ^= 0x5A
            with pytest.raises(EpochFormatError):
                load_epoch(bytes(mangled))

    def test_errors_carry_structured_context(self):
        error = None
        try:
            load_epoch(self.buf[: len(self.buf) // 2])
        except EpochFormatError as caught:
            error = caught
        assert error is not None
        assert hasattr(error, "section") and hasattr(error, "offset")
        assert isinstance(error, ValueError)

    def test_verify_false_skips_only_the_checksum(self):
        # Corrupting just the CRC trailer: strict load rejects,
        # verify=False (a trusted mmap'd cache hit) still loads.
        mangled = bytearray(self.buf)
        mangled[-1] ^= 0xFF
        with pytest.raises(EpochFormatError) as excinfo:
            load_epoch(bytes(mangled))
        assert "checksum" in str(excinfo.value) \
            or "crc" in str(excinfo.value).lower()
        loaded = load_epoch(bytes(mangled), verify=False)
        assert loaded.index.related("example.com", "shared.com")
        # Structural damage is rejected even without verification.
        with pytest.raises(EpochFormatError):
            load_epoch(self.buf[:40], verify=False)


class TestDiskCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = EpochDiskCache(tmp_path)
        epoch = compile_epoch(tricky_list())
        path = cache.put(epoch)
        assert path.exists()
        assert path.suffix == ".rwse"
        loaded = cache.get(epoch.snapshot.content_hash)
        assert loaded is not None
        assert loaded.snapshot.content_hash == epoch.snapshot.content_hash
        assert loaded.index.members_of("example.com") \
            == epoch.index.members_of("example.com")

    def test_miss_returns_none(self, tmp_path):
        cache = EpochDiskCache(tmp_path)
        assert cache.get("0" * 64) is None

    def test_corrupt_file_is_removed_not_served(self, tmp_path):
        cache = EpochDiskCache(tmp_path)
        epoch = compile_epoch(tricky_list())
        path = cache.put(epoch)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get(epoch.snapshot.content_hash) is None
        assert not path.exists()  # healed: poisoned file removed

    def test_mismatched_content_is_removed(self, tmp_path):
        cache = EpochDiskCache(tmp_path)
        epoch = compile_epoch(tricky_list())
        wrong_key = "f" * 64
        cache.put_encoded(wrong_key, epoch.to_buffer())
        assert cache.get(wrong_key) is None
        assert not cache.path_for(wrong_key).exists()

    def test_bootstrap_epoch_is_uncacheable(self, tmp_path):
        cache = EpochDiskCache(tmp_path)
        with pytest.raises(ValueError):
            cache.put(Epoch.bootstrap(default_psl()))

    def test_warm_writes_every_epoch(self, tmp_path):
        cache = EpochDiskCache(tmp_path)
        epochs = [compile_epoch(tricky_list()),
                  compile_epoch(build_small_synthetic_list())]
        paths = cache.warm(epochs)
        assert len(paths) == 2
        assert all(path.exists() for path in paths)

    def test_env_var_selects_directory(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EPOCH_CACHE", str(tmp_path / "env"))
        cache = EpochDiskCache()
        epoch = compile_epoch(tricky_list())
        path = cache.put(epoch)
        assert path.parent == tmp_path / "env"


class TestServiceIntegration:
    def test_encoded_epoch_is_cached_per_version(self):
        service = RwsService()
        try:
            service.publish(tricky_list())
            first = service.encoded_epoch()
            second = service.encoded_epoch()
            assert first is second  # one encode, cached bytes
            report = service.stats_report()
            assert report["epoch_encodes"] == 1.0
            assert report["epoch_encode_ns"] > 0.0
        finally:
            service.queue.shutdown()

    def test_encoded_epoch_without_publish_is_none(self):
        service = RwsService()
        try:
            assert service.encoded_epoch() is None
        finally:
            service.queue.shutdown()

    def test_adopt_encoded_bootstraps_a_follower(self):
        primary, follower = RwsService(), RwsService()
        try:
            primary.publish(tricky_list())
            buf = primary.encoded_epoch()
            snapshot = follower.adopt_encoded(buf)
            assert snapshot.version == 1
            assert follower.current_snapshot.content_hash \
                == primary.current_snapshot.content_hash
            assert follower.epoch.index.related("example.com",
                                                "shared.com")
            report = follower.stats_report()
            assert report["epoch_loads"] == 1.0
            assert report["epoch_load_ns"] > 0.0
            # The adopted buffer seeds the follower's own cache.
            assert follower.encoded_epoch(1) is buf
            assert follower.stats_report()["epoch_encodes"] == 0.0
        finally:
            primary.queue.shutdown()
            follower.queue.shutdown()

    def test_adopt_encoded_rejects_version_gap(self):
        primary, follower = RwsService(), RwsService()
        try:
            primary.publish(tricky_list())
            grown = tricky_list()
            grown.sets.append(RelatedWebsiteSet(
                primary="new.com", associated=["new-blog.com"],
                rationales={"new-blog.com": "Same publisher."}))
            primary.publish(grown)
            with pytest.raises(StaleSnapshotError):
                follower.adopt_encoded(primary.encoded_epoch(2))
        finally:
            primary.queue.shutdown()
            follower.queue.shutdown()

    def test_adopt_encoded_rejects_bootstrap_buffer(self):
        service = RwsService()
        try:
            empty = Epoch.bootstrap(default_psl())
            with pytest.raises(ValueError):
                service.adopt_encoded(empty.to_buffer())
        finally:
            service.queue.shutdown()

    def test_stale_version_encodes_from_the_store(self):
        service = RwsService()
        try:
            service.publish(tricky_list())
            grown = tricky_list()
            grown.sets.append(RelatedWebsiteSet(
                primary="new.com", associated=["new-blog.com"],
                rationales={"new-blog.com": "Same publisher."}))
            service.publish(grown)
            old = service.encoded_epoch(1)
            assert old is not None
            assert epoch_stat(old)["snapshot_version"] == 1
            assert service.encoded_epoch(99) is None
        finally:
            service.queue.shutdown()


class TestReplicaResync:
    def test_resync_reuses_the_primary_encoded_epoch(self):
        primary = RwsService(workers=2)
        try:
            primary.publish(tricky_list())
            replicas = [Replica(i, primary) for i in range(3)]
            grown = tricky_list()
            grown.sets.append(RelatedWebsiteSet(
                primary="new.com", associated=["new-blog.com"],
                rationales={"new-blog.com": "Same publisher."}))
            primary.publish(grown)
            for replica in replicas:
                assert replica.resync()
                assert replica.version == 2
                assert replica.epoch_loads == 1
                assert replica.epoch_load_ns > 0
                assert replica.stats_report()["epoch_loads"] == 1.0
            # One encode serves the whole fleet.
            assert primary.stats_report()["epoch_encodes"] == 1.0
            # Resynced replicas answer from the loaded buffer index.
            for replica in replicas:
                verdict = replica.query("new.com", "new-blog.com")
                assert verdict.related
        finally:
            primary.queue.shutdown()

    def test_resync_survives_a_primary_without_encoder(self):
        # _adopt degrades to a recompile when the primary has no
        # encoded_epoch surface (an older peer, say).
        primary = RwsService(workers=2)
        try:
            primary.publish(tricky_list())
            replica = Replica(0, primary)
            grown = tricky_list()
            grown.sets.append(RelatedWebsiteSet(
                primary="new.com", associated=["new-blog.com"],
                rationales={"new-blog.com": "Same publisher."}))
            snapshot = primary.publish(grown)
            replica.primary = object()  # no encoded_epoch attribute
            assert replica.resync(snapshot)
            assert replica.version == 2
            assert replica.epoch_loads == 0  # compiled, not loaded
        finally:
            primary.queue.shutdown()


class TestSyntheticGenerator:
    def test_exact_domain_count_and_determinism(self):
        one = build_synthetic_list(3000, seed=7)
        two = build_synthetic_list(3000, seed=7)
        assert membership_hash(one) == membership_hash(two)
        assert one.version == two.version
        index = MembershipIndex.from_list(one)
        assert index.site_count == 3000

    def test_seed_changes_the_list(self):
        assert membership_hash(build_synthetic_list(1000, seed=1)) \
            != membership_hash(build_synthetic_list(1000, seed=2))

    def test_small_variant_is_fixed_size(self):
        small = build_small_synthetic_list()
        index = MembershipIndex.from_list(small)
        assert index.site_count == SMALL_SYNTHETIC_DOMAINS
        v2 = build_small_synthetic_list_v2()
        assert membership_hash(v2) != membership_hash(small)
        assert v2.version != small.version

    def test_synthetic_list_round_trips(self):
        epoch = compile_epoch(build_synthetic_list(2000, seed=3))
        loaded = Epoch.from_buffer(epoch.to_buffer(include_psl=False),
                                   psl=epoch.psl)
        assert len(loaded.index) == 2000
        assert membership_hash(loaded.snapshot.rws_list) \
            == epoch.snapshot.content_hash


class TestWorkloadDigestIdentity:
    """Encoded fan-out must not move any run digest."""

    SCENARIOS = ["steady", "list-update", "stale-replica",
                 "synthetic-bulk"]

    def test_encoded_and_compiled_digests_match_serially(self):
        for name in self.SCENARIOS:
            encoded = run_serial(name, 40, seed=9)
            compiled = run_serial(name, 40, seed=9, encoded_epoch=False)
            assert encoded.digest == compiled.digest, name
            assert encoded.decisions == compiled.decisions, name

    def test_encoded_and_compiled_digests_match_sharded(self):
        for name in ("steady", "synthetic-bulk"):
            compiled = run_sharded(name, 40, 3, seed=9,
                                   executor="inline",
                                   encoded_epoch=False)
            encoded = run_sharded(name, 40, 3, seed=9,
                                  executor="inline")
            threaded = run_sharded(name, 40, 2, seed=9,
                                   executor="thread")
            assert encoded.digest == compiled.digest, name
            assert threaded.digest == compiled.digest, name
