"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; each must execute
without error and produce its expected headline output.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart.py", capsys)
    assert "related(timesinternet.in, indiatimes.com) = True" in output
    assert "Associated site isn't an eTLD+1" in output


def test_privacy_impact(capsys):
    output = run_example("privacy_impact.py", capsys)
    assert "requestStorageAccess() -> granted-rws" in output
    assert "Brave" in output
    assert "(none linked)" in output


def test_submission_checker(capsys):
    output = run_example("submission_checker.py", capsys)
    assert "REJECTED" in output
    assert "MERGEABLE" in output
    assert "Unable to fetch .well-known JSON file" in output


@pytest.mark.slow
def test_survey_replication(capsys):
    output = run_example("survey_replication.py", capsys)
    assert "RWS (same set)" in output
    assert "paper: 73.3%" in output


@pytest.mark.slow
def test_list_characterisation(capsys):
    output = run_example("list_characterisation.py", capsys)
    assert "Levenshtein" in output
    assert "news and media" in output


def test_ownership_audit(capsys):
    output = run_example("ownership_audit.py", capsys)
    assert "survey-eligible sites: 31" in output
    assert "affiliation alone" in output
