"""Tests for the governance simulation (plan, defects, full run)."""

import pytest

from repro.governance import build_plan, simulate_governance
from repro.governance.analyze import (
    cumulative_by_month,
    days_to_process,
    merged_with_any_failure,
    same_day_close_fraction,
    table3_message_counts,
)
from repro.governance.defects import DefectBundle, realize_run
from repro.governance.model import PrState
from repro.governance.planner import draft_set
from repro.netsim import Client
from repro.rws import Validator

PAPER_TABLE3 = {
    "Unable to fetch .well-known JSON file": 202,
    "Associated site isn't an eTLD+1": 65,
    "Service site without X-Robots-Tag header": 19,
    "PR set does not match .well-known JSON file": 12,
    "Alias site isn't an eTLD+1": 10,
    "Primary site isn't an eTLD+1": 9,
    "Other": 8,
    "No rationale for one or more set members": 5,
}


class TestDefectRealization:
    BASE = draft_set("defector.com")

    @pytest.mark.parametrize("bundle,expected_category,expected_count", [
        (DefectBundle(wk_missing=3),
         "Unable to fetch .well-known JSON file", 3),
        (DefectBundle(assoc_not_etld1=2),
         "Associated site isn't an eTLD+1", 2),
        (DefectBundle(service_no_xrobots=2),
         "Service site without X-Robots-Tag header", 2),
        (DefectBundle(wk_mismatch=2),
         "PR set does not match .well-known JSON file", 2),
        (DefectBundle(alias_not_etld1=2),
         "Alias site isn't an eTLD+1", 2),
        (DefectBundle(primary_not_etld1=1),
         "Primary site isn't an eTLD+1", 1),
        (DefectBundle(other=2), "Other", 2),
        (DefectBundle(missing_rationale=1),
         "No rationale for one or more set members", 1),
    ])
    def test_bundle_produces_exactly_expected_findings(
            self, bundle, expected_category, expected_count):
        realized = realize_run(self.BASE, bundle, seed=1)
        report = Validator(client=Client(realized.web)).validate(
            realized.submission)
        counts = report.table3_counts()
        assert counts.get(expected_category, 0) == expected_count
        # No collateral findings in other categories.
        assert sum(counts.values()) == expected_count

    def test_clean_bundle_passes(self):
        realized = realize_run(self.BASE, DefectBundle(), seed=1)
        report = Validator(client=Client(realized.web)).validate(
            realized.submission)
        assert report.passed

    def test_combined_bundle_counts_add(self):
        bundle = DefectBundle(wk_missing=2, assoc_not_etld1=1)
        realized = realize_run(self.BASE, bundle, seed=1)
        report = Validator(client=Client(realized.web)).validate(
            realized.submission)
        assert sum(report.table3_counts().values()) == 3

    def test_overfull_bundle_rejected(self):
        with pytest.raises(ValueError):
            realize_run(self.BASE, DefectBundle(assoc_not_etld1=99), seed=1)

    def test_total_property(self):
        bundle = DefectBundle(wk_missing=2, missing_rationale=3)
        assert bundle.total == 3  # Rationale counts once.
        assert DefectBundle().is_clean


class TestPlan:
    PLAN = build_plan()

    def test_114_prs(self):
        assert len(self.PLAN.prs) == 114

    def test_merged_closed_split(self):
        merged = sum(1 for pr in self.PLAN.prs if pr.merged)
        assert merged == 47
        assert len(self.PLAN.prs) - merged == 67

    def test_60_unique_primaries(self):
        assert len({pr.primary for pr in self.PLAN.prs}) == 60

    def test_sorted_by_open_date(self):
        dates = [pr.opened for pr in self.PLAN.prs]
        assert dates == sorted(dates)

    def test_window(self):
        assert self.PLAN.prs[0].opened.isoformat() >= "2023-03-01"
        assert self.PLAN.prs[-1].opened.isoformat() <= "2024-03-31"

    def test_resolution_never_before_open(self):
        for pr in self.PLAN.prs:
            assert pr.resolved >= pr.opened

    def test_exactly_one_merged_pr_with_failing_run(self):
        flagged = [
            pr for pr in self.PLAN.prs
            if pr.merged and any(not run.bundle.is_clean for run in pr.runs)
        ]
        assert len(flagged) == 1


class TestSimulation:
    def test_counts(self, pr_dataset):
        assert len(pr_dataset) == 114
        assert len(pr_dataset.with_state(PrState.MERGED)) == 47
        assert len(pr_dataset.with_state(PrState.CLOSED)) == 67

    def test_closed_percentage_matches_paper(self, pr_dataset):
        closed = len(pr_dataset.with_state(PrState.CLOSED))
        assert round(100 * closed / len(pr_dataset), 1) == 58.8

    def test_primaries_and_resubmission_mean(self, pr_dataset):
        assert len(pr_dataset.unique_primaries()) == 60
        assert pr_dataset.mean_prs_per_primary() == pytest.approx(1.9)

    def test_table3_exact(self, pr_dataset):
        assert table3_message_counts(pr_dataset) == PAPER_TABLE3

    def test_same_day_close_fraction(self, pr_dataset):
        fraction = same_day_close_fraction(pr_dataset)
        assert abs(100 * fraction - 54.3) < 1.0  # 36/67 = 53.7%.

    def test_approved_median_days(self, pr_dataset):
        import statistics
        days = days_to_process(pr_dataset)
        assert statistics.median(days["approved"]) == 5

    def test_one_merged_pr_failed_checks(self, pr_dataset):
        assert merged_with_any_failure(pr_dataset) == 1

    def test_cumulative_monotone_and_final(self, pr_dataset):
        cumulative = cumulative_by_month(pr_dataset)
        months = sorted(cumulative)
        approved = [cumulative[m]["approved"] for m in months]
        closed = [cumulative[m]["closed"] for m in months]
        assert approved == sorted(approved)
        assert closed == sorted(closed)
        assert approved[-1] == 47 and closed[-1] == 67

    def test_every_closed_pr_failed_validation(self, pr_dataset):
        for pr in pr_dataset.with_state(PrState.CLOSED):
            assert pr.ever_failed_validation(), pr.number

    def test_merged_prs_end_with_clean_run(self, pr_dataset):
        for pr in pr_dataset.with_state(PrState.MERGED):
            assert pr.validation_reports()[-1].passed, pr.number

    def test_events_well_formed(self, pr_dataset):
        from repro.governance.model import PrEventKind
        for pr in pr_dataset:
            kinds = [event.kind for event in pr.events]
            assert kinds[0] is PrEventKind.OPENED
            assert kinds[-1] in (PrEventKind.MERGED, PrEventKind.CLOSED)
            assert PrEventKind.BOT_COMMENT in kinds

    def test_simulation_is_deterministic(self, pr_dataset):
        again = simulate_governance()
        assert table3_message_counts(again) == \
            table3_message_counts(pr_dataset)
        assert [pr.primary for pr in again] == \
            [pr.primary for pr in pr_dataset]
