"""Unit tests for the PR lifecycle model (independent of the simulator)."""

import datetime as dt

import pytest

from repro.governance.model import (
    PrDataset,
    PrEvent,
    PrEventKind,
    PrState,
    PullRequest,
)
from repro.rws import RelatedWebsiteSet
from repro.rws.validation import ValidationReport


def make_pr(number: int, primary: str, state: PrState,
            opened: dt.date, resolved: dt.date | None) -> PullRequest:
    submission = RelatedWebsiteSet(primary=primary,
                                   associated=[f"a-{primary}"])
    return PullRequest(
        number=number,
        primary=primary,
        submission=submission,
        opened=opened,
        state=state,
        resolved=resolved,
        events=[PrEvent(kind=PrEventKind.OPENED, date=opened)],
    )


class TestPullRequest:
    def test_days_to_process(self):
        pr = make_pr(1, "a.com", PrState.MERGED,
                     dt.date(2024, 1, 1), dt.date(2024, 1, 6))
        assert pr.days_to_process == 5

    def test_days_none_while_open(self):
        pr = make_pr(2, "a.com", PrState.OPEN, dt.date(2024, 1, 1), None)
        assert pr.days_to_process is None

    def test_validation_reports_in_order(self):
        pr = make_pr(3, "a.com", PrState.MERGED,
                     dt.date(2024, 1, 1), dt.date(2024, 1, 2))
        failing = ValidationReport()
        from repro.rws.validation import CheckCode, Finding
        failing.findings.append(Finding(CheckCode.EMPTY_SET, "a.com", "x"))
        passing = ValidationReport()
        pr.events.append(PrEvent(kind=PrEventKind.BOT_COMMENT,
                                 date=dt.date(2024, 1, 1), report=failing))
        pr.events.append(PrEvent(kind=PrEventKind.BOT_COMMENT,
                                 date=dt.date(2024, 1, 2), report=passing))
        reports = pr.validation_reports()
        assert [r.passed for r in reports] == [False, True]
        assert pr.ever_failed_validation()

    def test_never_failed_without_reports(self):
        pr = make_pr(4, "a.com", PrState.CLOSED,
                     dt.date(2024, 1, 1), dt.date(2024, 1, 1))
        assert not pr.ever_failed_validation()


class TestPrDataset:
    @pytest.fixture()
    def dataset(self) -> PrDataset:
        return PrDataset(pull_requests=[
            make_pr(1, "a.com", PrState.CLOSED,
                    dt.date(2024, 1, 1), dt.date(2024, 1, 1)),
            make_pr(2, "a.com", PrState.MERGED,
                    dt.date(2024, 1, 2), dt.date(2024, 1, 7)),
            make_pr(3, "b.com", PrState.MERGED,
                    dt.date(2024, 2, 1), dt.date(2024, 2, 4)),
        ])

    def test_with_state(self, dataset):
        assert len(dataset.with_state(PrState.MERGED)) == 2
        assert len(dataset.with_state(PrState.CLOSED)) == 1
        assert dataset.with_state(PrState.OPEN) == []

    def test_unique_primaries(self, dataset):
        assert dataset.unique_primaries() == {"a.com", "b.com"}

    def test_mean_prs_per_primary(self, dataset):
        assert dataset.mean_prs_per_primary() == pytest.approx(1.5)

    def test_empty_dataset(self):
        dataset = PrDataset()
        assert dataset.mean_prs_per_primary() == 0.0
        assert len(dataset) == 0

    def test_iteration(self, dataset):
        assert [pr.number for pr in dataset] == [1, 2, 3]
