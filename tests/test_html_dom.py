"""Tests for tree construction and DOM queries."""

from repro.html import Element, Text, parse_html


class TestTreeConstruction:
    def test_basic_nesting(self):
        root = parse_html("<html><body><div><p>x</p></div></body></html>")
        body = root.find("body")
        assert body is not None
        paragraph = body.find("p")
        assert paragraph is not None
        assert paragraph.text() == "x"

    def test_synthetic_root_without_html_tag(self):
        root = parse_html("<p>bare</p>")
        assert root.tag == "html"
        assert root.find("p").text() == "bare"

    def test_html_attributes_merged_to_root(self):
        root = parse_html('<html lang="de"><body></body></html>')
        assert root.attributes["lang"] == "de"

    def test_void_elements_take_no_children(self):
        root = parse_html("<div><br><p>after</p></div>")
        div = root.find("div")
        tags = [child.tag for child in div.children
                if isinstance(child, Element)]
        assert tags == ["br", "p"]

    def test_implicit_p_close(self):
        root = parse_html("<p>one<p>two")
        paragraphs = root.find_all("p")
        assert [p.text() for p in paragraphs] == ["one", "two"]

    def test_implicit_li_close(self):
        root = parse_html("<ul><li>a<li>b<li>c</ul>")
        assert [li.text() for li in root.find_all("li")] == ["a", "b", "c"]

    def test_stray_end_tag_ignored(self):
        root = parse_html("<div></span><p>ok</p></div>")
        assert root.find("p").text() == "ok"

    def test_end_tag_closes_intermediates(self):
        root = parse_html("<div><span><em>x</div><p>y</p>")
        # </div> closes span and em; p is a sibling of div.
        assert root.find("p").parent.tag == "html"


class TestDomQueries:
    ROOT = parse_html(
        '<html><body>'
        '<div id="main" class="wrap big">'
        '<p class="intro">Hello <em>world</em></p>'
        '<p>Second</p>'
        "</div>"
        '<a href="/about">About us</a>'
        "</body></html>"
    )

    def test_find_by_id(self):
        assert self.ROOT.find_by_id("main").tag == "div"
        assert self.ROOT.find_by_id("missing") is None

    def test_find_by_class(self):
        assert [e.tag for e in self.ROOT.find_by_class("intro")] == ["p"]
        assert self.ROOT.find_by_class("wrap")[0].id == "main"

    def test_classes_property(self):
        assert self.ROOT.find_by_id("main").classes == ["wrap", "big"]

    def test_find_all(self):
        assert len(self.ROOT.find_all("p")) == 2

    def test_text_concatenation(self):
        assert self.ROOT.find("p").text() == "Hello world"

    def test_get_attribute_case_insensitive(self):
        anchor = self.ROOT.find("a")
        assert anchor.get("HREF") == "/about"
        assert anchor.get("missing", "default") == "default"

    def test_iter_elements_preorder(self):
        tags = [e.tag for e in self.ROOT.iter_elements()]
        assert tags[0] == "html"
        assert tags.index("div") < tags.index("p")

    def test_parent_pointers(self):
        em = self.ROOT.find("em")
        assert em.parent.tag == "p"

    def test_text_nodes(self):
        paragraph = self.ROOT.find("p")
        text_children = [c for c in paragraph.children if isinstance(c, Text)]
        assert text_children[0].content.strip() == "Hello"
