"""Tests for feature extraction and the html-similarity metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.html import (
    extract_features,
    joint_similarity,
    page_similarity,
    structural_similarity,
    style_similarity,
)
from repro.html.extract import PageFeatures

PAGE = """
<!DOCTYPE html>
<html lang="en">
<head>
  <title>Example Site</title>
  <meta name="theme-color" content="#123456">
  <meta property="og:site_name" content="Example Org">
</head>
<body>
  <header class="top nav-bar"><div id="logo" class="brand">Example Org</div>
    <nav><a href="/">Home</a><a href="/about">About</a></nav>
  </header>
  <main class="content">
    <section class="card hero"><h2>Welcome</h2>
      <p class="lead">Hello.</p>
      <a href="https://other.example.net/page">partner</a>
    </section>
  </main>
  <footer class="footer"><p>© 2024 Example Org. All rights reserved.</p>
    <a href="/about">About us</a></footer>
</body>
</html>
"""


class TestExtraction:
    FEATURES = extract_features(PAGE)

    def test_title(self):
        assert self.FEATURES.title == "Example Site"

    def test_theme_color(self):
        assert self.FEATURES.theme_color == "#123456"

    def test_brand_tokens_include_og_logo_and_copyright(self):
        assert "example org" in self.FEATURES.brand_tokens

    def test_header_and_footer_text(self):
        assert "Example Org" in self.FEATURES.header_text
        assert "© 2024 Example Org" in self.FEATURES.footer_text

    def test_about_links(self):
        assert "/about" in self.FEATURES.about_links

    def test_outbound_hosts(self):
        assert "other.example.net" in self.FEATURES.outbound_hosts

    def test_tag_sequence_in_document_order(self):
        tags = self.FEATURES.tag_sequence
        assert tags.index("header") < tags.index("main") < tags.index("footer")

    def test_class_sequence_with_repeats(self):
        assert self.FEATURES.class_sequence.count("brand") == 1
        assert "card" in self.FEATURES.class_sequence

    def test_script_excluded_from_structure(self):
        features = extract_features("<body><script>x()</script><p>t</p></body>")
        assert "script" not in features.tag_sequence

    def test_copyright_holder_with_year(self):
        features = extract_features(
            "<footer><p>© 2023 Acme Widgets Ltd. More text.</p></footer>"
        )
        assert any("acme" in token for token in features.brand_tokens)

    def test_malformed_html_does_not_raise(self):
        extract_features("<div <p>><<garbage&&&")


class TestStyleSimilarity:
    def test_identical_pages(self):
        features = extract_features(PAGE)
        assert style_similarity(features, features) == 1.0

    def test_disjoint_class_sets(self):
        a = PageFeatures(class_sequence=["a1", "a2", "a3", "a4", "a5"])
        b = PageFeatures(class_sequence=["b1", "b2", "b3", "b4", "b5"])
        assert style_similarity(a, b) == 0.0

    def test_both_unstyled_are_identical(self):
        assert style_similarity(PageFeatures(), PageFeatures()) == 1.0

    def test_partial_overlap_in_range(self):
        a = PageFeatures(class_sequence=["x", "y", "z", "w", "v"])
        b = PageFeatures(class_sequence=["x", "y", "z", "w", "q"])
        assert 0.0 < style_similarity(a, b) < 1.0


class TestStructuralSimilarity:
    def test_identical(self):
        a = PageFeatures(tag_sequence=["div", "p", "a"])
        assert structural_similarity(a, a) == 1.0

    def test_disjoint(self):
        a = PageFeatures(tag_sequence=["div", "p"])
        b = PageFeatures(tag_sequence=["table", "tr"])
        assert structural_similarity(a, b) == 0.0

    def test_size_disparity_bounds_score(self):
        small = PageFeatures(tag_sequence=["p"] * 10)
        large = PageFeatures(tag_sequence=["p"] * 90)
        assert structural_similarity(small, large) == pytest.approx(0.2)


class TestJointSimilarity:
    def test_weighting(self):
        a = PageFeatures(tag_sequence=["p", "a"], class_sequence=["x"] * 4)
        b = PageFeatures(tag_sequence=["p", "a"], class_sequence=["y"] * 4)
        # Structural 1.0, style 0.0 -> joint = k.
        assert joint_similarity(a, b, k=0.3) == pytest.approx(0.3)
        assert joint_similarity(a, b, k=0.7) == pytest.approx(0.7)

    def test_invalid_k(self):
        a = PageFeatures()
        with pytest.raises(ValueError):
            joint_similarity(a, a, k=1.5)

    def test_page_similarity_end_to_end(self):
        scores = page_similarity(PAGE, PAGE)
        assert scores.style == 1.0
        assert scores.structural == 1.0
        assert scores.joint == 1.0

    @given(k=st.floats(0.0, 1.0))
    def test_joint_within_bounds(self, k):
        a = PageFeatures(tag_sequence=["p", "a", "div"],
                         class_sequence=["x", "y", "z", "x"])
        b = PageFeatures(tag_sequence=["p", "table"],
                         class_sequence=["x", "q", "y", "z"])
        assert 0.0 <= joint_similarity(a, b, k=k) <= 1.0

    def test_symmetry(self):
        html_a = "<div class='a b'><p>1</p></div>"
        html_b = "<section class='a c'><em>2</em></section>"
        ab = page_similarity(html_a, html_b)
        ba = page_similarity(html_b, html_a)
        assert ab == ba
