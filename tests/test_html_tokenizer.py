"""Tests for the HTML tokenizer."""

from repro.html import Token, TokenKind, tokenize
from repro.html.tokenizer import decode_entities


def kinds(html: str) -> list[TokenKind]:
    return [token.kind for token in tokenize(html)]


class TestBasicTokens:
    def test_simple_document(self):
        tokens = tokenize("<html><body><p>hi</p></body></html>")
        assert [t.kind for t in tokens] == [
            TokenKind.START_TAG, TokenKind.START_TAG, TokenKind.START_TAG,
            TokenKind.TEXT, TokenKind.END_TAG, TokenKind.END_TAG,
            TokenKind.END_TAG,
        ]
        assert tokens[0].data == "html"
        assert tokens[3].data == "hi"

    def test_tag_names_lowercased(self):
        tokens = tokenize("<DIV></DIV>")
        assert tokens[0].data == "div"
        assert tokens[1].data == "div"

    def test_doctype(self):
        tokens = tokenize("<!DOCTYPE html><p>x</p>")
        assert tokens[0].kind is TokenKind.DOCTYPE

    def test_comment(self):
        tokens = tokenize("<!-- a comment --><p>x</p>")
        assert tokens[0].kind is TokenKind.COMMENT
        assert tokens[0].data.strip() == "a comment"

    def test_unterminated_comment(self):
        tokens = tokenize("<!-- never ends")
        assert tokens[0].kind is TokenKind.COMMENT

    def test_self_closing(self):
        tokens = tokenize("<br/><img src='x'/>")
        assert all(t.self_closing for t in tokens)

    def test_whitespace_only_text_dropped(self):
        assert kinds("<p>  </p>") == [TokenKind.START_TAG, TokenKind.END_TAG]


class TestAttributes:
    def test_quoted(self):
        token = tokenize('<a href="https://x.com/p" class="big link">')[0]
        assert token.attributes == {"href": "https://x.com/p",
                                    "class": "big link"}

    def test_single_quoted_and_unquoted(self):
        token = tokenize("<input type='text' value=abc disabled>")[0]
        assert token.attributes["type"] == "text"
        assert token.attributes["value"] == "abc"
        assert token.attributes["disabled"] == ""

    def test_attribute_names_lowercased(self):
        token = tokenize('<div CLASS="x" ID="y">')[0]
        assert set(token.attributes) == {"class", "id"}

    def test_first_occurrence_wins(self):
        token = tokenize('<div class="a" class="b">')[0]
        assert token.attributes["class"] == "a"

    def test_entities_in_values(self):
        token = tokenize('<a title="a &amp; b">')[0]
        assert token.attributes["title"] == "a & b"


class TestRawText:
    def test_script_contents_not_parsed(self):
        tokens = tokenize("<script>if (a < b) { x(); }</script><p>t</p>")
        assert tokens[0].data == "script"
        assert tokens[1].kind is TokenKind.TEXT
        assert "a < b" in tokens[1].data
        assert tokens[2].kind is TokenKind.END_TAG

    def test_style_contents_not_parsed(self):
        tokens = tokenize("<style>p > a { color: red }</style>")
        assert "p > a" in tokens[1].data

    def test_unterminated_script(self):
        tokens = tokenize("<script>var x = 1;")
        assert tokens[-1].kind is TokenKind.TEXT


class TestMalformed:
    def test_dangling_lt_is_text(self):
        tokens = tokenize("a < b")
        assert all(t.kind is TokenKind.TEXT for t in tokens)

    def test_empty_tag_is_text(self):
        tokens = tokenize("<>x")
        assert tokens[0].kind is TokenKind.TEXT

    def test_invalid_tag_name_is_text(self):
        tokens = tokenize("<123>x")
        assert tokens[0].kind is TokenKind.TEXT

    def test_never_raises(self):
        # Tokenizer must be total over arbitrary text.
        for garbage in ("<<<<", "<a <b>", "</>", "<p", "&#xZZ;", "<!>"):
            tokenize(garbage)


class TestEntities:
    def test_named(self):
        assert decode_entities("a &amp; b &lt;c&gt;") == "a & b <c>"

    def test_numeric(self):
        assert decode_entities("&#65;&#x42;") == "AB"

    def test_unknown_left_alone(self):
        assert decode_entities("&unknown;") == "&unknown;"

    def test_bare_ampersand(self):
        assert decode_entities("fish & chips") == "fish & chips"


def test_token_dataclass_defaults():
    token = Token(TokenKind.TEXT, "x")
    assert token.attributes == {}
    assert not token.self_closing
