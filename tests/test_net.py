"""Tests for the TCP transport (repro.net server + clients).

Covers the connection lifecycle (hello negotiation, idle timeout, the
connection cap), pipelining with ordered responses, backpressure
pushback, malformed traffic, retry semantics, drain-on-publish (the
torn-response storm, extending the ``tests/test_serve.py`` epoch-storm
pattern onto real sockets), and transport-equivalence of workload
digests.
"""

import json
import socket
import threading
import time

import pytest

from repro.api import (
    API_VERSION,
    BatchQueryRequest,
    BatchQueryResponse,
    ErrorCode,
    ErrorResponse,
    PublishRequest,
    PublishResponse,
    QueryRequest,
    QueryResponse,
    StatsRequest,
    StatsResponse,
)
from repro.net import (
    AsyncTcpApiClient,
    NetClientError,
    RwsTcpServer,
    ServerThread,
    TcpApiClient,
    encode_frame,
    hello_message,
)
from repro.net.frame import FrameDecoder
from repro.rws import RelatedWebsiteSet, RwsList
from repro.serve import RwsService


def list_a() -> RwsList:
    return RwsList(sets=[RelatedWebsiteSet(
        primary="alpha.com", associated=["alpha-news.com"],
        rationales={"alpha-news.com": "Shared branding with alpha.com."},
    )])


def list_b() -> RwsList:
    return RwsList(sets=[RelatedWebsiteSet(
        primary="beta.com", associated=["beta-shop.com"],
        rationales={"beta-shop.com": "Affiliated storefront of beta.com."},
    )])


@pytest.fixture
def service():
    service = RwsService()
    service.publish(list_a())
    yield service
    service.queue.shutdown()


@pytest.fixture
def harness(service):
    with ServerThread(RwsTcpServer(service)) as harness:
        yield harness


def raw_hello(host, port, document: str) -> dict:
    """One raw hello exchange, bypassing the client's own hello."""
    with socket.create_connection((host, port), timeout=5) as sock:
        sock.sendall(encode_frame(document))
        decoder = FrameDecoder()
        while True:
            payload = decoder.next_frame()
            if payload is not None:
                return json.loads(payload)
            chunk = sock.recv(65536)
            assert chunk, "server closed before answering hello"
            decoder.feed(chunk)


class TestHello:
    def test_negotiates_requested_version(self, harness):
        host, port = harness.server.address
        client = TcpApiClient(host, port, api_version=API_VERSION)
        client.dispatch(StatsRequest())
        assert client.negotiated_version == API_VERSION
        assert client.server_window == harness.server.window
        client.close()

    def test_newer_peer_downgrades(self, harness):
        host, port = harness.server.address
        hello = raw_hello(host, port, json.dumps(
            {"kind": "hello", "api_version": API_VERSION + 7}))
        assert hello["ok"] is True
        assert hello["api_version"] == API_VERSION
        assert hello["max_frame_bytes"] == harness.server.max_frame_bytes

    def test_too_old_peer_refused(self, harness):
        host, port = harness.server.address
        hello = raw_hello(host, port, json.dumps(
            {"kind": "hello", "api_version": 0}))
        assert hello["ok"] is False
        assert hello["error"]["code"] == "MALFORMED"

    def test_non_hello_first_frame_refused(self, harness):
        host, port = harness.server.address
        hello = raw_hello(host, port, json.dumps(
            {"kind": "request", "op": "stats", "payload": {},
             "api_version": API_VERSION}))
        assert hello["ok"] is False

    def test_hello_garbage_json_refused(self, harness):
        host, port = harness.server.address
        hello = raw_hello(host, port, "{not json")
        assert hello["ok"] is False
        assert hello["error"]["code"] == "MALFORMED"


class TestLifecycle:
    def test_round_trip_and_counters(self, harness):
        host, port = harness.server.address
        with TcpApiClient(host, port) as client:
            response = client.dispatch(
                QueryRequest(host_a="alpha-news.com", host_b="alpha.com"))
            assert type(response) is QueryResponse
            assert response.verdict.related
        snapshot = harness.server.net_snapshot()
        assert snapshot["counters"]["connections_opened"] == 1
        assert snapshot["counters"]["requests"] == 1
        assert snapshot["counters"]["responses"] == 1

    def test_idle_timeout_closes_quiet_connections(self, service):
        with ServerThread(RwsTcpServer(service,
                                       idle_timeout=0.15)) as harness:
            host, port = harness.server.address
            client = TcpApiClient(host, port, retries=0)
            client.dispatch(StatsRequest())
            deadline = time.time() + 5
            while time.time() < deadline:
                counters = harness.server.net_snapshot()["counters"]
                if counters["idle_timeouts"] >= 1:
                    break
                time.sleep(0.05)
            assert counters["idle_timeouts"] >= 1
            client.close()

    def test_max_connections_cap_refuses_at_hello(self, service):
        with ServerThread(RwsTcpServer(service,
                                       max_connections=1)) as harness:
            host, port = harness.server.address
            first = TcpApiClient(host, port)
            first.dispatch(StatsRequest())  # pool keeps the conn open
            second = TcpApiClient(host, port, retries=0)
            with pytest.raises(NetClientError, match="RATE_LIMITED"):
                second.dispatch(StatsRequest())
            counters = harness.server.net_snapshot()["counters"]
            assert counters["connections_rejected"] == 1
            first.close()
            second.close()

    def test_server_thread_context_manager(self, service):
        with ServerThread(RwsTcpServer(service)) as harness:
            host, port = harness.server.address
            with TcpApiClient(host, port) as client:
                assert type(client.dispatch(StatsRequest())) \
                    is StatsResponse


class TestPipelining:
    def test_ordered_responses(self, harness):
        """A pipelined burst answers strictly in request order."""
        import asyncio

        host, port = harness.server.address
        requests = [
            QueryRequest(host_a="alpha-news.com", host_b="alpha.com"),
            StatsRequest(),
            QueryRequest(host_a="beta-shop.com", host_b="beta.com"),
            BatchQueryRequest(pairs=[("alpha.com", "alpha-news.com")],
                              detail=False),
            StatsRequest(),
        ]

        async def run():
            async with AsyncTcpApiClient(host, port) as client:
                return await client.pipeline(requests)

        responses = asyncio.run(run())
        assert [type(r) for r in responses] == [
            QueryResponse, StatsResponse, QueryResponse,
            BatchQueryResponse, StatsResponse]
        assert responses[0].verdict.related is True
        assert responses[2].verdict.related is False  # pre-publish

    def test_sync_pipeline(self, harness):
        host, port = harness.server.address
        with TcpApiClient(host, port) as client:
            responses = client.pipeline(
                [StatsRequest() for _ in range(8)])
            assert all(type(r) is StatsResponse for r in responses)

    def test_backpressure_rate_limited_past_window(self, service):
        """Requests beyond the in-flight window get RATE_LIMITED, in
        order, and the connection keeps working."""
        import asyncio

        with ServerThread(RwsTcpServer(service, window=2,
                                       workers=1)) as harness:
            host, port = harness.server.address
            burst = [StatsRequest() for _ in range(24)]

            async def run():
                async with AsyncTcpApiClient(host, port) as client:
                    responses = await client.pipeline(burst)
                    follow_up = await client.call(StatsRequest())
                    return responses, follow_up

            responses, follow_up = asyncio.run(run())
            limited = [r for r in responses
                       if isinstance(r, ErrorResponse)]
            assert limited, "expected RATE_LIMITED pushback"
            assert all(r.error.code is ErrorCode.RATE_LIMITED
                       for r in limited)
            served = [r for r in responses if type(r) is StatsResponse]
            assert served, "window-admitted requests still answer"
            assert type(follow_up) is StatsResponse
            counters = harness.server.net_snapshot()["counters"]
            assert counters["backpressure_stalls"] == len(limited)


class TestMalformedTraffic:
    def test_bad_request_json_answers_malformed(self, harness):
        """Undecodable request payloads come back as MALFORMED
        envelopes; the connection survives."""
        host, port = harness.server.address
        with socket.create_connection((host, port), timeout=5) as sock:
            decoder = FrameDecoder()

            def read_one():
                while True:
                    payload = decoder.next_frame()
                    if payload is not None:
                        return payload
                    chunk = sock.recv(65536)
                    assert chunk
                    decoder.feed(chunk)

            sock.sendall(encode_frame(hello_message()))
            assert json.loads(read_one())["ok"] is True
            sock.sendall(encode_frame("{definitely not a request"))
            envelope = json.loads(read_one())
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "MALFORMED"
            # Still alive: a well-formed request answers normally.
            from repro.api import encode_request
            sock.sendall(encode_frame(encode_request(StatsRequest())))
            assert json.loads(read_one())["ok"] is True

    def test_oversized_frame_prefix_errors_and_closes(self, service):
        with ServerThread(RwsTcpServer(service,
                                       max_frame_bytes=1024)) as harness:
            host, port = harness.server.address
            with socket.create_connection((host, port), timeout=5) as sock:
                sock.sendall(encode_frame(hello_message(), 1024))
                sock.sendall((4096).to_bytes(4, "big"))
                decoder = FrameDecoder(1024)
                frames = []
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break  # server closed after answering
                    decoder.feed(chunk)
                    frames.extend(decoder.frames())
                assert len(frames) == 2  # hello + the error envelope
                envelope = json.loads(frames[1])
                assert envelope["ok"] is False
                assert envelope["error"]["code"] == "MALFORMED"
            counters = harness.server.net_snapshot()["counters"]
            assert counters["malformed"] == 1


class TestRetry:
    def _kill_pooled_socket(self, client: TcpApiClient) -> None:
        """Sabotage the pooled connection so the next send/read fails."""
        conn = client._pool.get_nowait()
        conn.sock.close()
        client._pool.put_nowait(conn)

    def test_idempotent_read_retries_on_dead_connection(self, harness):
        host, port = harness.server.address
        client = TcpApiClient(host, port, retries=2, backoff=0.01)
        client.dispatch(StatsRequest())
        self._kill_pooled_socket(client)
        response = client.dispatch(StatsRequest())  # retried, fresh conn
        assert type(response) is StatsResponse
        assert client.net_snapshot()["counters"]["retries"] >= 1
        client.close()

    def test_mutating_op_never_retries(self, harness):
        host, port = harness.server.address
        client = TcpApiClient(host, port, retries=2, backoff=0.01)
        client.dispatch(StatsRequest())
        self._kill_pooled_socket(client)
        with pytest.raises(NetClientError):
            client.dispatch(PublishRequest(rws_list=list_b()))
        assert client.net_snapshot()["counters"]["retries"] == 0
        client.close()


class TestFaultInjection:
    """Injectable transport faults on the client (chaos satellite).

    ``fault_hook(op, attempt)`` lets tests tear the connection at the
    worst moments — before the frame leaves, or after the server has
    the frame but before the response arrives — and asserts the replay
    policy holds: mutations reach the server at most once, ever.
    """

    @staticmethod
    def _wait_for(predicate, timeout=5.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.01)
        return predicate()

    def test_lost_response_never_replays_publish(self, harness):
        """An "after" fault means the server processed the publish but
        the response died on the wire.  The client must surface the
        error without retrying — the epoch advances exactly once."""
        host, port = harness.server.address
        client = TcpApiClient(
            host, port, retries=2, backoff=0.01,
            fault_hook=lambda op, attempt: (
                "after" if op == "publish" else None))
        with pytest.raises(NetClientError, match="response lost"):
            client.dispatch(PublishRequest(rws_list=list_b()))
        counters = client.net_snapshot()["counters"]
        assert counters["retries"] == 0
        assert counters["faults_injected"] == 1
        # The server side actually committed the publish — once.
        assert self._wait_for(
            lambda: harness.server.net_snapshot()
            ["counters"].get("publishes", 0) == 1)
        probe = TcpApiClient(host, port)
        stats = probe.dispatch(StatsRequest())
        assert stats.report["snapshot_version"] == 2  # seed v1 + 1
        probe.close()
        client.close()

    def test_before_fault_never_reaches_server(self, harness):
        """A "before" fault kills the attempt pre-send: the server
        must never see the mutation at all."""
        host, port = harness.server.address
        client = TcpApiClient(
            host, port, retries=2, backoff=0.01,
            fault_hook=lambda op, attempt: (
                "before" if op == "publish" else None))
        with pytest.raises(NetClientError, match="before send"):
            client.dispatch(PublishRequest(rws_list=list_b()))
        assert client.net_snapshot()["counters"]["faults_injected"] == 1
        probe = TcpApiClient(host, port)
        stats = probe.dispatch(StatsRequest())
        assert stats.report["snapshot_version"] == 1
        assert harness.server.net_snapshot()["counters"].get(
            "publishes", 0) == 0
        probe.close()
        client.close()

    def test_faulted_read_retries_and_succeeds(self, harness):
        """Idempotent ops ride the retry loop through injected faults
        and land on a fresh connection."""
        host, port = harness.server.address
        client = TcpApiClient(
            host, port, retries=2, backoff=0.01,
            fault_hook=lambda op, attempt: (
                "after" if op == "stats" and attempt == 0 else None))
        response = client.dispatch(StatsRequest())
        assert type(response) is StatsResponse
        counters = client.net_snapshot()["counters"]
        assert counters["retries"] == 1
        assert counters["faults_injected"] == 1
        assert counters["backoff_ms"] >= 10  # 0.01s base backoff
        client.close()

    def test_counters_fold_under_net_client_namespace(self, harness):
        """The workload driver folds client snapshots via
        ``fold_net_snapshot(..., namespace="net.client")`` — retries,
        backoff, and injected faults must all surface there."""
        from repro.obs import MetricsRegistry, fold_net_snapshot

        host, port = harness.server.address
        client = TcpApiClient(
            host, port, retries=2, backoff=0.01,
            fault_hook=lambda op, attempt: (
                "before" if op == "stats" and attempt == 0 else None))
        client.dispatch(StatsRequest())
        registry = MetricsRegistry()
        fold_net_snapshot(registry, client.net_snapshot(),
                          namespace="net.client")
        portable = registry.to_portable()
        assert portable["counters"]["net.client.retries"] == 1
        assert portable["counters"]["net.client.faults_injected"] == 1
        assert portable["counters"]["net.client.backoff_ms"] >= 10
        client.close()


class TestDrainOnPublish:
    def test_pipelined_read_after_publish_sees_new_epoch(self, harness):
        """The drain contract on one connection: a query pipelined
        behind a publish answers against the published epoch."""
        import asyncio

        host, port = harness.server.address

        async def run():
            async with AsyncTcpApiClient(host, port) as client:
                return await client.pipeline([
                    QueryRequest(host_a="beta-shop.com",
                                 host_b="beta.com"),
                    PublishRequest(rws_list=list_b()),
                    QueryRequest(host_a="beta-shop.com",
                                 host_b="beta.com"),
                    StatsRequest(),
                ])

        before, published, after, stats = asyncio.run(run())
        assert type(before) is QueryResponse
        assert before.verdict.related is False
        assert type(published) is PublishResponse
        assert type(after) is QueryResponse
        assert after.verdict.related is True
        assert stats.report["snapshot_version"] == published.version

    def test_publish_storm_never_tears_a_batch(self, service):
        """Extends the ``test_serve.py`` epoch-storm pattern onto real
        sockets: while one connection storms alternating publishes, a
        batch query spanning both lists' sets must answer against
        exactly one epoch — one related pair, never both or neither."""
        with ServerThread(RwsTcpServer(service, workers=4)) as harness:
            host, port = harness.server.address
            publishes = 60
            readers = 3
            stop = threading.Event()
            torn: list[list[bool]] = []
            errors: list[BaseException] = []

            def publisher():
                try:
                    with TcpApiClient(host, port, retries=0) as client:
                        for i in range(publishes):
                            rws_list = list_b() if i % 2 == 0 else list_a()
                            response = client.dispatch(
                                PublishRequest(rws_list=rws_list))
                            assert type(response) is PublishResponse, \
                                response
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                finally:
                    stop.set()

            def reader():
                pairs = [("alpha-news.com", "alpha.com"),
                         ("beta-shop.com", "beta.com")]
                try:
                    with TcpApiClient(host, port, retries=0) as client:
                        while not stop.is_set():
                            response = client.dispatch(BatchQueryRequest(
                                pairs=pairs, detail=False))
                            assert type(response) is BatchQueryResponse,\
                                response
                            if sum(response.related) != 1:
                                torn.append(list(response.related))
                                return
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=publisher)]
            threads += [threading.Thread(target=reader)
                        for _ in range(readers)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, errors
            assert not torn, f"torn batch responses: {torn}"
            snapshot = harness.server.net_snapshot()
            assert snapshot["counters"]["publishes"] == publishes
            # The storm must actually have exercised the drain path.
            assert snapshot["counters"]["requests"] > publishes

    def test_drain_counts_publish_waits(self, harness):
        """drain_waits only counts publishes that found reads in
        flight; a quiet publish drains for free."""
        host, port = harness.server.address
        with TcpApiClient(host, port) as client:
            client.dispatch(PublishRequest(rws_list=list_b()))
        snapshot = harness.server.net_snapshot()
        assert snapshot["counters"]["publishes"] == 1
        assert snapshot["counters"]["drain_waits"] == 0


class TestObservability:
    def test_net_snapshot_folds_into_registry(self, harness):
        from repro.obs import MetricsRegistry, fold_net_snapshot

        host, port = harness.server.address
        with TcpApiClient(host, port) as client:
            client.dispatch(StatsRequest())
        registry = MetricsRegistry()
        fold_net_snapshot(registry, harness.server.net_snapshot())
        fold_net_snapshot(registry, client.net_snapshot(),
                          namespace="net.client")
        assert registry.counters["net.requests"] == 1
        assert registry.counters["net.client.requests"] == 1
        assert registry.gauges["net.window"] == harness.server.window
        assert "net.request_ns" in registry.histograms

    def test_stats_registry_merges_backend_report(self, harness):
        host, port = harness.server.address
        with TcpApiClient(host, port) as client:
            client.dispatch(QueryRequest(host_a="alpha-news.com",
                                         host_b="alpha.com"))
        registry = harness.server.stats_registry()
        assert registry.counters["net.requests"] == 1
        assert registry.counters["serve.queries"] >= 1

    def test_tracer_records_net_spans(self, service):
        from repro.obs import Tracer

        tracer = Tracer(seed=0)
        with ServerThread(RwsTcpServer(service, workers=1,
                                       tracer=tracer)) as harness:
            host, port = harness.server.address
            with TcpApiClient(host, port) as client:
                client.dispatch(QueryRequest(host_a="alpha-news.com",
                                             host_b="alpha.com"))
                client.dispatch(StatsRequest())
        names = {span["name"] for span in tracer.summary().spans}
        assert {"net.accept", "net.frame.decode", "net.dispatch",
                "net.frame.encode"} <= names


class TestTransportEquivalence:
    """The determinism invariant extends over the wire: TCP dispatch
    yields bit-identical outcome digests."""

    def test_serial_digest_matches_inproc(self):
        from repro.workload.driver import run_workload

        inproc = run_workload("steady", 30, seed=11)
        tcp = run_workload("steady", 30, seed=11, transport="tcp")
        assert tcp.digest_hex == inproc.digest_hex
        assert tcp.transport == "tcp"
        assert tcp.registry is not None
        assert tcp.registry.counters["net.requests"] > 0

    def test_sharded_digest_matches_inproc(self):
        from repro.workload.driver import run_workload

        inproc = run_workload("steady", 30, shards=3, seed=11,
                              executor="inline")
        tcp = run_workload("steady", 30, shards=3, seed=11,
                           executor="inline", transport="tcp")
        assert tcp.digest_hex == inproc.digest_hex

    def test_list_update_digest_matches_inproc(self):
        from repro.workload.driver import run_workload

        inproc = run_workload("list-update", 24, seed=5)
        tcp = run_workload("list-update", 24, seed=5, transport="tcp")
        assert tcp.digest_hex == inproc.digest_hex
        assert tcp.snapshot_version == inproc.snapshot_version

    def test_trace_with_tcp_is_refused(self):
        from repro.workload.driver import run_workload

        with pytest.raises(ValueError, match="inproc"):
            run_workload("steady", 5, seed=0, trace=True,
                         transport="tcp")

    def test_unknown_transport_is_refused(self):
        from repro.workload.driver import run_workload

        with pytest.raises(ValueError, match="transport"):
            run_workload("steady", 5, seed=0, transport="smoke-signal")
