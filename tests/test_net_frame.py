"""Framing-layer property tests (repro.net.frame) — no server needed.

Round-trips the length-prefixed wire format through every chunking a
socket could produce (random splits, one-byte dribble, coalesced
frames), and pins the failure modes: garbage prefixes, oversized
declarations, decoder poisoning.  Also covers the codec-hardening
satellite: oversized and truncated wire documents must come back as
structured ``MALFORMED`` errors, bounded by
:data:`repro.api.codec.MAX_WIRE_BYTES`.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api.codec import (
    MAX_WIRE_BYTES,
    WireError,
    decode_request,
    decode_response,
    encode_request,
)
from repro.api.dispatcher import Dispatcher
from repro.api.envelopes import ErrorCode, QueryRequest
from repro.net.frame import (
    PREFIX_BYTES,
    FrameDecoder,
    FrameError,
    encode_frame,
)
from repro.rws import RelatedWebsiteSet, RwsList
from repro.serve import RwsService


def chunked(blob: bytes, cut_points: list[int]) -> list[bytes]:
    """Split a blob at the given sorted offsets (no empty requirement)."""
    cuts = sorted(set(point % (len(blob) + 1) for point in cut_points))
    pieces = []
    previous = 0
    for cut in cuts:
        pieces.append(blob[previous:cut])
        previous = cut
    pieces.append(blob[previous:])
    return [piece for piece in pieces]


payloads = st.lists(
    st.text(min_size=1, max_size=64).map(lambda s: s.encode("utf-8")),
    min_size=1, max_size=8,
)


class TestRoundTrip:
    @settings(max_examples=50)
    @given(payloads=payloads, cuts=st.lists(st.integers(min_value=0,
                                                        max_value=10_000),
                                            max_size=12))
    def test_random_chunk_splits(self, payloads, cuts):
        """Any chunking of any frame sequence yields the same payloads."""
        blob = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for piece in chunked(blob, cuts):
            decoder.feed(piece)
            out.extend(decoder.frames())
        assert out == payloads
        assert decoder.idle

    @settings(max_examples=25)
    @given(payloads=payloads)
    def test_one_byte_dribble(self, payloads):
        """The pathological chunking: one byte per feed."""
        blob = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(len(blob)):
            decoder.feed(blob[i:i + 1])
            out.extend(decoder.frames())
        assert out == payloads

    @settings(max_examples=25)
    @given(payloads=payloads)
    def test_coalesced_single_feed(self, payloads):
        """Every frame in one feed call — the opposite extreme."""
        decoder = FrameDecoder()
        completed = decoder.feed(b"".join(encode_frame(p)
                                          for p in payloads))
        assert completed == len(payloads)
        assert decoder.frames() == payloads

    def test_next_frame_pops_in_order(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"a") + encode_frame(b"b"))
        assert decoder.next_frame() == b"a"
        assert decoder.next_frame() == b"b"
        assert decoder.next_frame() is None


class TestRejection:
    def test_garbage_prefix_rejected_before_payload(self):
        """A hostile length never waits for its payload bytes."""
        decoder = FrameDecoder(max_bytes=1024)
        bad = (2048).to_bytes(4, "big")
        with pytest.raises(FrameError) as excinfo:
            decoder.feed(bad)
        assert excinfo.value.error.code is ErrorCode.MALFORMED
        assert "2048" in str(excinfo.value)

    def test_zero_length_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError):
            decoder.feed((0).to_bytes(4, "big"))

    def test_poisoned_decoder_stays_poisoned(self):
        decoder = FrameDecoder(max_bytes=16)
        with pytest.raises(FrameError):
            decoder.feed((17).to_bytes(4, "big"))
        # Even a perfectly fine follow-up frame re-raises: framing is
        # lost for good on this stream.
        with pytest.raises(FrameError):
            decoder.feed(encode_frame(b"ok", 16))

    @settings(max_examples=30)
    @given(garbage=st.binary(min_size=PREFIX_BYTES, max_size=64))
    def test_random_garbage_never_overallocates(self, garbage):
        """Random bytes either frame innocently or raise — the buffer
        never exceeds prefix + declared (in-range) payload."""
        decoder = FrameDecoder(max_bytes=256)
        try:
            decoder.feed(garbage)
        except FrameError:
            return
        assert decoder.pending_bytes <= 256

    def test_encode_rejects_empty_and_oversized(self):
        with pytest.raises(FrameError):
            encode_frame(b"")
        with pytest.raises(FrameError):
            encode_frame(b"x" * 17, max_bytes=16)


class TestCodecHardening:
    """Satellite: oversized / truncated payloads → structured MALFORMED."""

    def test_oversized_request_document_refused(self):
        text = encode_request(QueryRequest(host_a="a.example",
                                           host_b="b.example"))
        with pytest.raises(WireError) as excinfo:
            decode_request(text, max_bytes=10)
        error = excinfo.value.error
        assert error.code is ErrorCode.MALFORMED
        assert error.detail["max_bytes"] == "10"
        assert int(error.detail["bytes"]) == len(text.encode("utf-8"))

    def test_oversized_response_document_refused(self):
        with pytest.raises(WireError) as excinfo:
            decode_response("x" * 64, max_bytes=32)
        assert excinfo.value.error.code is ErrorCode.MALFORMED

    def test_max_bytes_none_disables_the_check(self):
        text = encode_request(QueryRequest(host_a="a.example",
                                           host_b="b.example"))
        request, version = decode_request(text, max_bytes=None)
        assert request == QueryRequest(host_a="a.example",
                                       host_b="b.example")

    def test_default_ceiling_is_the_wire_constant(self):
        # A normal document sails through the 4 MiB default.
        text = encode_request(QueryRequest(host_a="a.example",
                                           host_b="b.example"))
        assert len(text.encode("utf-8")) < MAX_WIRE_BYTES
        decode_request(text)

    def test_truncated_payload_is_malformed(self):
        text = encode_request(QueryRequest(host_a="a.example",
                                           host_b="b.example"))
        with pytest.raises(WireError) as excinfo:
            decode_request(text[:len(text) // 2])
        assert excinfo.value.error.code is ErrorCode.MALFORMED

    def test_dispatch_wire_oversized_is_an_error_envelope(self):
        """The never-raises wire entry point folds the size refusal
        into a MALFORMED response envelope."""
        service = RwsService()
        service.publish(RwsList(sets=[RelatedWebsiteSet(
            primary="example.com", associated=["example-news.com"],
            rationales={"example-news.com": "Shared branding."})]))
        try:
            dispatcher = Dispatcher(service)
            text = encode_request(QueryRequest(host_a="example-news.com",
                                               host_b="example.com"))
            envelope = json.loads(dispatcher.dispatch_wire(text,
                                                           max_bytes=10))
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "MALFORMED"
            # And within bounds the same document dispatches fine.
            assert json.loads(dispatcher.dispatch_wire(text))["ok"] is True
        finally:
            service.queue.shutdown()
