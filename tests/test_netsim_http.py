"""Tests for headers, messages, DNS, server, and client."""

import pytest

from repro.netsim import (
    Client,
    FetchError,
    FetchPolicy,
    Headers,
    Request,
    ResolutionError,
    Response,
    SyntheticResolver,
    SyntheticWeb,
    parse_url,
)


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers({"Content-Type": "text/html"})
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_multi_value(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("set-cookie", "b=2")
        assert headers.get("Set-Cookie") == "a=1"
        assert headers.get_all("SET-COOKIE") == ["a=1", "b=2"]

    def test_set_replaces(self):
        headers = Headers()
        headers.add("X-A", "1")
        headers.add("X-A", "2")
        headers.set("x-a", "3")
        assert headers.get_all("X-A") == ["3"]

    def test_remove_missing_is_noop(self):
        headers = Headers()
        headers.remove("X-Nothing")
        assert len(headers) == 0

    def test_contains_and_iter(self):
        headers = Headers({"A": "1", "B": "2"})
        assert "a" in headers
        assert list(headers) == [("A", "1"), ("B", "2")]

    def test_rejects_header_injection(self):
        headers = Headers()
        with pytest.raises(ValueError):
            headers.add("X-Evil", "a\r\nInjected: yes")
        with pytest.raises(ValueError):
            headers.add("Bad\nName", "x")

    def test_equality_is_case_insensitive_on_names(self):
        assert Headers({"A": "1"}) == Headers({"a": "1"})
        assert Headers({"A": "1"}) != Headers({"A": "2"})

    def test_copy_is_independent(self):
        original = Headers({"A": "1"})
        clone = original.copy()
        clone.add("B", "2")
        assert "B" not in original


class TestMessages:
    def test_request_normalises_method(self):
        request = Request(url=parse_url("https://example.com/"), method="get")
        assert request.method == "GET"

    def test_request_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            Request(url=parse_url("https://example.com/"), method="BREW")

    def test_response_helpers(self):
        response = Response.html("<p>hi</p>")
        assert response.ok
        assert response.content_type == "text/html"
        assert response.reason == "OK"

        not_found = Response.not_found()
        assert not_found.status == 404
        assert not not_found.ok

        redirect = Response.redirect("https://example.com/next")
        assert redirect.is_redirect
        assert redirect.headers.get("Location") == "https://example.com/next"

    def test_json_response(self):
        response = Response.json('{"a": 1}')
        assert response.content_type == "application/json"


class TestResolver:
    def test_register_and_resolve(self):
        resolver = SyntheticResolver()
        address = resolver.register("example.com")
        assert resolver.resolve("example.com") == address

    def test_unknown_is_nxdomain(self):
        resolver = SyntheticResolver()
        with pytest.raises(ResolutionError) as info:
            resolver.resolve("nothing.test")
        assert not info.value.transient

    def test_wildcard_subdomains(self):
        resolver = SyntheticResolver()
        address = resolver.register("example.com")
        assert resolver.resolve("deep.sub.example.com") == address

    def test_strict_mode_disables_wildcard(self):
        resolver = SyntheticResolver(strict=True)
        resolver.register("example.com")
        with pytest.raises(ResolutionError):
            resolver.resolve("sub.example.com")

    def test_failing_host_is_transient(self):
        resolver = SyntheticResolver()
        resolver.register("slow.com")
        resolver.set_failing("slow.com")
        with pytest.raises(ResolutionError) as info:
            resolver.resolve("slow.com")
        assert info.value.transient
        resolver.set_failing("slow.com", False)
        assert resolver.is_live("slow.com")

    def test_is_live_for_bad_name(self):
        assert not SyntheticResolver().is_live("not a domain")


class TestServerAndClient:
    @pytest.fixture()
    def web(self):
        web = SyntheticWeb(seed=3)
        web.set_page("example.com", "/", "<html><body>home</body></html>")
        web.set_page("example.com", "/deep", "<html><body>deep</body></html>")
        return web

    def test_basic_get(self, web):
        response = Client(web).get("https://example.com/")
        assert response.ok
        assert "home" in response.body

    def test_missing_route_is_404(self, web):
        response = Client(web).get("https://example.com/nothing")
        assert response.status == 404

    def test_unknown_host_raises_nxdomain(self, web):
        with pytest.raises(FetchError) as info:
            Client(web).get("https://unknown.test/")
        assert info.value.reason == "nxdomain"

    def test_http_upgraded_to_https(self, web):
        result = Client(web).fetch("http://example.com/deep")
        assert result.ok
        assert result.response.url is not None
        assert result.response.url.scheme == "https"
        assert len(result.history) == 1

    def test_http_only_host_fails_tls(self):
        web = SyntheticWeb()
        web.add_host("legacy.com", https=False)
        web.set_page("legacy.com", "/", "<html></html>")
        response = Client(web).get("https://legacy.com/")
        assert response.status == 502

    def test_redirect_chain_followed(self, web):
        web.set_redirect("example.com", "/a", "/b")
        web.set_redirect("example.com", "/b", "/deep")
        result = Client(web).fetch("https://example.com/a")
        assert result.ok
        assert [r.status for r in result.history] == [302, 302]

    def test_redirect_loop_detected(self, web):
        web.set_redirect("example.com", "/x", "/y")
        web.set_redirect("example.com", "/y", "/x")
        with pytest.raises(FetchError) as info:
            Client(web).get("https://example.com/x")
        assert info.value.reason == "redirect-loop"

    def test_max_redirects(self, web):
        for index in range(15):
            web.set_redirect("example.com", f"/hop{index}", f"/hop{index + 1}")
        policy = FetchPolicy(max_redirects=5)
        with pytest.raises(FetchError) as info:
            Client(web, policy).get("https://example.com/hop0")
        assert info.value.reason in ("too-many-redirects", "redirect-loop")

    def test_require_https_policy(self, web):
        policy = FetchPolicy(require_https=True)
        with pytest.raises(FetchError) as info:
            Client(web, policy).get("http://example.com/")
        assert info.value.reason == "insecure-url"

    def test_timeout_budget(self, web):
        policy = FetchPolicy(timeout_ms=0.001)
        with pytest.raises(FetchError) as info:
            Client(web, policy).get("https://example.com/")
        assert info.value.reason == "timeout"

    def test_head_strips_body(self, web):
        response = Client(web).head("https://example.com/")
        assert response.ok
        assert response.body == ""

    def test_error_injection_is_deterministic(self):
        def build() -> list[int]:
            web = SyntheticWeb(seed=11)
            web.add_host("flaky.com", error_rate=0.5)
            web.set_page("flaky.com", "/", "<html></html>")
            client = Client(web)
            return [client.get("https://flaky.com/").status
                    for _ in range(20)]

        first = build()
        second = build()
        assert first == second
        assert 503 in first and 200 in first

    def test_remove_host(self, web):
        web.remove_host("example.com")
        with pytest.raises(FetchError):
            Client(web).get("https://example.com/")

    def test_duplicate_host_rejected(self, web):
        with pytest.raises(ValueError):
            web.add_host("example.com")

    def test_request_log_records_traffic(self, web):
        client = Client(web)
        client.get("https://example.com/")
        assert any(r.url.host == "example.com" for r in web.request_log)

    def test_dynamic_handler(self):
        web = SyntheticWeb()
        web.add_host("api.com",
                     handler=lambda req: Response.json(f'{{"path": "{req.url.path}"}}'))
        response = Client(web).get("https://api.com/v1/items")
        assert '"/v1/items"' in response.body
