"""Unit + property tests for URL parsing and site semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim import URL, URLError, parse_url

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=6)


class TestParsing:
    def test_minimal(self):
        url = parse_url("https://example.com")
        assert url.scheme == "https"
        assert url.host == "example.com"
        assert url.path == "/"
        assert url.port is None

    def test_full(self):
        url = parse_url("http://Sub.Example.COM:8080/a/b?x=1&y=2#frag")
        assert url.scheme == "http"
        assert url.host == "sub.example.com"
        assert url.port == 8080
        assert url.path == "/a/b"
        assert url.query == "x=1&y=2"
        assert url.fragment == "frag"

    def test_default_port_normalised_away(self):
        assert parse_url("https://example.com:443/").port is None
        assert parse_url("http://example.com:80/").port is None

    def test_effective_port(self):
        assert parse_url("https://example.com").effective_port == 443
        assert parse_url("http://example.com").effective_port == 80
        assert parse_url("https://example.com:8443").effective_port == 8443

    def test_query_without_path(self):
        url = parse_url("https://example.com?q=1")
        assert url.path == "/"
        assert url.query == "q=1"

    @pytest.mark.parametrize("bad", [
        "", "example.com", "ftp://example.com", "https://",
        "https://:8080", "https://example.com:0", "https://example.com:99999",
        "https://example.com:abc", "https://user@example.com",
        "https://bad host.com",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(URLError):
            parse_url(bad)

    def test_str_round_trip(self):
        for text in (
            "https://example.com/",
            "https://example.com:8443/path?q=1#f",
            "http://a.b.example.co.uk/x/y/",
        ):
            assert str(parse_url(text)) == text


class TestSiteSemantics:
    def test_origin(self):
        url = parse_url("https://a.example.com:8443/p")
        assert url.origin == ("https", "a.example.com", 8443)

    def test_site_is_etld_plus_one(self, psl):
        assert parse_url("https://act.eff.org/x").site(psl) == "eff.org"
        assert parse_url("https://shop.example.co.uk/").site(psl) == \
            "example.co.uk"

    def test_same_site(self, psl):
        a = parse_url("https://act.eff.org/1")
        b = parse_url("https://www.eff.org/2")
        c = parse_url("https://example.com/")
        assert a.same_site(b, psl)
        assert not a.same_site(c, psl)

    def test_is_secure(self):
        assert parse_url("https://example.com").is_secure
        assert not parse_url("http://example.com").is_secure


class TestReferenceResolution:
    BASE = parse_url("https://example.com/dir/page?q=1#top")

    def test_absolute(self):
        resolved = self.BASE.resolve("https://other.net/x")
        assert str(resolved) == "https://other.net/x"

    def test_scheme_relative(self):
        resolved = self.BASE.resolve("//other.net/y")
        assert resolved.scheme == "https"
        assert resolved.host == "other.net"

    def test_absolute_path(self):
        resolved = self.BASE.resolve("/root?z=2")
        assert resolved.host == "example.com"
        assert resolved.path == "/root"
        assert resolved.query == "z=2"
        assert resolved.fragment is None

    def test_relative_path(self):
        resolved = self.BASE.resolve("sibling")
        assert resolved.path == "/dir/sibling"

    def test_dot_dot(self):
        resolved = self.BASE.resolve("../up")
        assert resolved.path == "/up"

    def test_fragment_only(self):
        resolved = self.BASE.resolve("#bottom")
        assert resolved.path == self.BASE.path
        assert resolved.fragment == "bottom"

    def test_with_path(self):
        url = parse_url("https://example.com/a?q=1")
        assert str(url.with_path("b")) == "https://example.com/b"


class TestProperties:
    @given(labels=st.lists(LABEL, min_size=2, max_size=4),
           path_segments=st.lists(LABEL, max_size=3))
    def test_parse_str_round_trip(self, labels, path_segments):
        host = ".".join(labels)
        path = "/" + "/".join(path_segments)
        original = f"https://{host}{path}"
        assert str(parse_url(original)) == original

    @given(labels=st.lists(LABEL, min_size=2, max_size=4))
    def test_parse_is_idempotent(self, labels):
        url = parse_url(f"https://{'.'.join(labels)}/x")
        assert parse_url(str(url)) == url


def test_url_is_value_object():
    a = URL(scheme="https", host="example.com")
    b = URL(scheme="https", host="example.com")
    assert a == b
    assert hash(a) == hash(b)
