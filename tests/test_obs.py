"""Tests for the observability layer (repro.obs).

The layer's contract is determinism-first: merged metrics and trace
digests must be bit-identical for a seeded workload across runs, shard
counts, and executors — exactly like the outcome digest — while
wall-clock timing stays an opt-in annotation that never enters any
digest.
"""

import json
import threading

from repro.data import build_rws_list
from repro.obs import (
    DETERMINISTIC_WORKLOAD_COUNTERS,
    METRICS_SCHEMA,
    NULL_TRACER,
    MetricsRegistry,
    StageProfiler,
    TRACE_SCHEMA,
    Tracer,
    TraceSummary,
    fold_api_counter,
    fold_psl_stats,
    fold_queue_stats,
    fold_stats_report,
    fold_workload_metrics,
    load_snapshot,
    metrics_snapshot,
    registry_for_backend,
    render_metrics_lines,
    render_trace_lines,
    trace_snapshot,
    write_snapshot,
)
from repro.obs.trace import span_id
from repro.serve import RwsService
from repro.workload import replicated, run_workload
from repro.workload.metrics import WorkloadMetrics
from repro.workload.scenarios import _seed_v2


class TestMetricsRegistry:
    def test_counters_add_on_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.count("serve.queries", 2, deterministic=True)
        right.count("serve.queries", 3, deterministic=True)
        right.count("serve.publishes", 1)
        left.merge(right)
        assert left.counter_value("serve.queries") == 5
        assert left.counter_value("serve.publishes") == 1
        assert left.deterministic_counters() == {"serve.queries": 5}

    def test_gauges_keep_max_on_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("serve.epoch", 3.0)
        right.gauge("serve.epoch", 5.0)
        right.gauge("serve.index_sets", 41.0)
        left.merge(right)
        assert left.gauges == {"serve.epoch": 5.0,
                               "serve.index_sets": 41.0}

    def test_histograms_vector_add_on_merge(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.record_latency("workload.latency.rsa", 100)
        right.record_latency("workload.latency.rsa", 100_000)
        left.merge(right)
        merged = left.histograms["workload.latency.rsa"]
        assert merged.total == 2
        assert merged.percentile(0.0) < merged.percentile(1.0)

    def test_portable_round_trip_preserves_digest(self):
        registry = MetricsRegistry()
        registry.count("workload.queries", 7, deterministic=True)
        registry.gauge("serve.epoch", 2.0)
        registry.record_latency("api.latency.query", 1500)
        clone = MetricsRegistry.from_portable(registry.to_portable())
        assert clone.digest_hex() == registry.digest_hex()
        assert clone.as_flat_dict() == registry.as_flat_dict()

    def test_digest_covers_only_deterministic_counters(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry, noise in ((left, 10), (right, 99)):
            registry.count("workload.queries", 7, deterministic=True)
            registry.count("serve.resolver_hits", noise)
            registry.gauge("serve.epoch", float(noise))
            registry.record_latency("api.latency.query", noise * 100)
        assert left.digest_hex() == right.digest_hex()
        left.count("workload.queries", 1, deterministic=True)
        assert left.digest_hex() != right.digest_hex()

    def test_merge_commutes(self):
        def build(queries, hits):
            registry = MetricsRegistry()
            registry.count("workload.queries", queries,
                           deterministic=True)
            registry.count("workload.related_hits", hits,
                           deterministic=True)
            return registry

        ab = build(3, 1)
        ab.merge(build(5, 2))
        ba = build(5, 2)
        ba.merge(build(3, 1))
        assert ab.digest_hex() == ba.digest_hex()
        assert ab.counters == ba.counters


class TestRegistryAdapters:
    def test_fold_psl_stats_namespaces_and_gauges(self):
        registry = MetricsRegistry()
        fold_psl_stats(registry, {"hits": 10, "misses": 2,
                                  "size": 12, "maxsize": 4096})
        assert registry.counter_value("psl.hits") == 10
        assert registry.counter_value("psl.misses") == 2
        assert registry.gauges["psl.size"] == 12.0
        assert registry.gauges["psl.maxsize"] == 4096.0

    def test_fold_queue_stats(self):
        from repro.serve.queue import QueueStats

        registry = MetricsRegistry()
        fold_queue_stats(registry, QueueStats(submitted=4, passed=3,
                                              rejected=1, errored=0))
        assert registry.counter_value("queue.submitted") == 4
        assert registry.counter_value("queue.passed") == 3
        assert registry.counter_value("queue.rejected") == 1

    def test_fold_api_counter(self):
        from repro.api import Dispatcher, QueryRequest, RequestCounter

        service = RwsService()
        service.publish(build_rws_list())
        try:
            counter = RequestCounter()
            dispatcher = Dispatcher(service, middlewares=(counter,))
            dispatcher.dispatch(QueryRequest("timesinternet.in",
                                             "indiatimes.com"))
            registry = MetricsRegistry()
            fold_api_counter(registry, counter)
            assert registry.counter_value("api.requests.query") == 1
        finally:
            service.queue.shutdown()

    def test_fold_workload_metrics_marks_deterministic(self):
        metrics = WorkloadMetrics()
        metrics.count("queries", 5)
        metrics.count("resolver_hits", 9)
        metrics.record_latency("rsa", 2000)
        registry = MetricsRegistry()
        fold_workload_metrics(registry, metrics)
        assert registry.deterministic_counters() == \
            {"workload.queries": 5}
        assert registry.counter_value("workload.resolver_hits") == 9
        assert "workload.latency.rsa" in registry.histograms
        assert "queries" in DETERMINISTIC_WORKLOAD_COUNTERS

    def test_fold_stats_report_namespaces(self):
        registry = MetricsRegistry()
        fold_stats_report(registry, {
            "queries": 12.0, "epoch": 3.0, "psl_hits": 7.0,
            "queue_submitted": 2.0, "replicas": 4.0,
            "replica_catch_ups": 1.0,
        })
        assert registry.counter_value("serve.queries") == 12
        assert registry.gauges["serve.epoch"] == 3.0
        assert registry.counter_value("psl.hits") == 7
        assert registry.counter_value("queue.submitted") == 2
        assert registry.gauges["cluster.replicas"] == 4.0
        assert registry.counter_value("cluster.replica_catch_ups") == 1

    def test_registry_for_backend_covers_service_report(self):
        service = RwsService()
        service.publish(build_rws_list())
        try:
            service.query("timesinternet.in", "indiatimes.com")
            registry = registry_for_backend(service)
            assert registry.counter_value("serve.queries") == 1
            assert registry.gauges["serve.epoch"] == 1.0
            assert registry.gauges["serve.index_sets"] == 41.0
        finally:
            service.queue.shutdown()


class TestTracerDeterminism:
    @staticmethod
    def _manual_run(seed, *, wall_clock=False):
        tracer = Tracer(seed=seed, wall_clock=wall_clock)
        for index in range(5):
            with tracer.request(index):
                with tracer.span("outer", user=index):
                    tracer.emit("inner", value=index * 2)
        return tracer

    def test_same_seed_same_digest(self):
        first = self._manual_run(7)
        second = self._manual_run(7)
        assert first.digest_hex() == second.digest_hex()
        assert first.span_count == second.span_count == 10

    def test_seed_changes_span_ids_and_digest(self):
        assert self._manual_run(7).digest_hex() \
            != self._manual_run(8).digest_hex()
        assert span_id(7, 0, 0, "outer") != span_id(8, 0, 0, "outer")

    def test_wall_clock_is_excluded_from_the_digest(self):
        logical = self._manual_run(7)
        walled = self._manual_run(7, wall_clock=True)
        assert walled.digest_hex() == logical.digest_hex()
        assert any(span.wall_ns is not None for span in walled.spans())
        assert all(span.wall_ns is None for span in logical.spans())

    def test_spans_outside_requests_are_dropped(self):
        tracer = Tracer(seed=7)
        tracer.emit("orphan")  # warmup/background work: not a request
        with tracer.span("also-orphan"):
            pass
        assert tracer.span_count == 0
        assert int(tracer.digest_hex(), 16) == 0

    def test_summary_merge_equals_single_tracer(self):
        """Shard-local tracers merge to the whole-run digest."""
        whole = self._manual_run(7)
        low, high = Tracer(seed=7), Tracer(seed=7)
        for index in range(5):
            tracer = low if index < 3 else high
            with tracer.request(index):
                with tracer.span("outer", user=index):
                    tracer.emit("inner", value=index * 2)
        merged = low.summary()
        merged.merge(high.summary())
        assert merged.digest_hex == whole.digest_hex()
        assert merged.span_count == whole.span_count
        assert merged.request_count == whole.request_count

    def test_summary_portable_round_trip(self):
        summary = self._manual_run(7).summary()
        clone = TraceSummary.from_portable(summary.to_portable())
        assert clone.digest_hex == summary.digest_hex
        assert clone.span_count == summary.span_count

    def test_null_tracer_is_inert(self):
        assert NULL_TRACER.live is False
        with NULL_TRACER.request(0):
            NULL_TRACER.emit("anything", key="value")
            with NULL_TRACER.span("nested"):
                pass
        assert NULL_TRACER.span_count == 0
        assert int(NULL_TRACER.digest_hex(), 16) == 0


class TestWorkloadObservability:
    """The satellite contract: obs digests merge exactly like outcomes."""

    def test_trace_and_registry_digests_partition_independent(self):
        serial = run_workload("steady", 60, seed=11, trace=True)
        sharded = run_workload("steady", 60, shards=3, seed=11,
                               executor="inline", trace=True)
        threaded = run_workload("steady", 60, shards=2, seed=11,
                                executor="thread", trace=True)
        for other in (sharded, threaded):
            assert other.digest == serial.digest
            assert other.trace.digest_hex == serial.trace.digest_hex
            assert other.trace.span_count == serial.trace.span_count
            assert other.registry.digest_hex() \
                == serial.registry.digest_hex()

    def test_outcome_digest_unchanged_by_tracing(self):
        untraced = run_workload("steady", 60, seed=11)
        traced = run_workload("steady", 60, seed=11, trace=True)
        assert traced.digest == untraced.digest
        assert untraced.trace is None
        assert traced.trace.span_count > 0
        assert untraced.registry is not None

    def test_stale_replica_trace_digest_partition_independent(self):
        serial = run_workload("stale-replica", 40, seed=5, trace=True)
        sharded = run_workload("stale-replica", 40, shards=2, seed=5,
                               executor="thread", trace=True)
        assert sharded.trace.digest_hex == serial.trace.digest_hex
        assert sharded.digest == serial.digest

    def test_replicated_lag0_registry_digest_matches_serial(self):
        scenario = replicated("steady", 2, lag=0)
        serial = run_workload(scenario, 50, seed=3, trace=True)
        sharded = run_workload(scenario, 50, shards=2, seed=3,
                               executor="inline", trace=True)
        plain = run_workload("steady", 50, seed=3)
        assert sharded.digest == serial.digest == plain.digest
        assert sharded.registry.digest_hex() \
            == serial.registry.digest_hex() \
            == plain.registry.digest_hex()
        assert sharded.trace.digest_hex == serial.trace.digest_hex

    def test_report_lines_surface_obs_digests(self):
        result = run_workload("steady", 30, seed=2, trace=True)
        text = "\n".join(result.report_lines())
        assert f"metrics digest {result.registry.digest_hex()}" in text
        assert f"trace digest {result.trace.digest_hex}" in text


class TestPublishStormConsistency:
    def test_stats_report_is_a_single_capture(self):
        """Scrapes during a publish storm never mix two epochs.

        The v1 list has 41 sets, every storm publish carries the
        42-set successor — so any report pairing the v1 version with
        the v2 set count (or vice versa) would prove a torn capture.
        """
        service = RwsService()
        service.publish(build_rws_list())  # version 1, 41 sets
        sets_by_generation = {1: 41.0}
        storm_sets = float(len(_seed_v2().sets))

        stop = threading.Event()
        publish_errors = []

        def publish_loop():
            try:
                while not stop.is_set():
                    service.publish(_seed_v2())
            except Exception as exc:  # pragma: no cover - diagnostic
                publish_errors.append(exc)

        workers = [threading.Thread(target=publish_loop)
                   for _ in range(3)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(200):
                registry = service.stats_registry()
                gauges = registry.gauges
                version = gauges["serve.epoch"]
                assert gauges["serve.snapshot_version"] == version
                expected = sets_by_generation.get(version, storm_sets)
                assert gauges["serve.index_sets"] == expected, (
                    f"torn capture: version {version} reported "
                    f"{gauges['serve.index_sets']} sets"
                )
        finally:
            stop.set()
            for worker in workers:
                worker.join()
            service.queue.shutdown()
        assert not publish_errors


class TestStageProfiler:
    def test_attach_detach_restores_behaviour(self):
        service = RwsService()
        service.publish(build_rws_list())
        try:
            profiler = StageProfiler()
            profiler.attach_shell(service)
            verdict = service.query("timesinternet.in", "indiatimes.com")
            assert verdict.related is True
            assert profiler.allocations["alloc.query_verdict"] == 1
            assert profiler.stages["serve.query"].total == 1

            profiler.detach()
            assert "query" not in vars(service)
            service.query("timesinternet.in", "indiatimes.com")
            assert profiler.allocations["alloc.query_verdict"] == 1
        finally:
            service.queue.shutdown()

    def test_fold_into_registry_under_profile_namespace(self):
        profiler = StageProfiler()
        profiler.record("serve.query", 1500)
        profiler.count_alloc("alloc.query_verdict", 3)
        registry = MetricsRegistry()
        profiler.fold_into(registry)
        assert registry.counter_value("profile.alloc.query_verdict") == 3
        assert registry.histograms["profile.serve.query"].total == 1
        report = profiler.report()
        assert report["alloc.query_verdict"] == 3.0
        assert report["serve.query.count"] == 1.0


class TestExport:
    def test_metrics_snapshot_round_trips(self, tmp_path):
        registry = MetricsRegistry()
        registry.count("workload.queries", 9, deterministic=True)
        registry.gauge("serve.epoch", 1.0)
        registry.record_latency("api.latency.query", 2000)
        snapshot = metrics_snapshot(registry, meta={"scenario": "steady"})
        assert snapshot["schema"] == METRICS_SCHEMA
        assert snapshot["digest"] == registry.digest_hex()
        assert snapshot["deterministic"] == {"workload.queries": 9}
        assert snapshot["meta"] == {"scenario": "steady"}

        path = write_snapshot(tmp_path / "metrics.json", snapshot)
        assert load_snapshot(path) == json.loads(
            json.dumps(snapshot))  # JSON-able and stable

    def test_trace_snapshot_schema_and_digest(self, tmp_path):
        tracer = Tracer(seed=4)
        with tracer.request(0):
            tracer.emit("serve.query", related=True)
        snapshot = trace_snapshot(tracer.summary())
        assert snapshot["schema"] == TRACE_SCHEMA
        assert snapshot["digest"] == tracer.digest_hex()
        path = write_snapshot(tmp_path / "trace.json", snapshot)
        assert load_snapshot(path)["digest"] == tracer.digest_hex()

    def test_render_metrics_lines(self):
        registry = MetricsRegistry()
        registry.count("serve.queries", 3)
        registry.record_latency("api.latency.query", 1000)
        lines = render_metrics_lines(registry)
        assert any("serve.queries" in line and "3" in line
                   for line in lines)
        assert any(line.startswith("registry digest ")
                   for line in lines)

    def test_render_trace_lines(self):
        tracer = Tracer(seed=4)
        for index in range(3):
            with tracer.request(index):
                tracer.emit("serve.query", related=bool(index % 2))
        lines = render_trace_lines(tracer.summary(), limit=2)
        assert lines[0] == f"trace digest {tracer.digest_hex()}"
        assert any("serve.query" in line for line in lines)
        assert any("1 more spans" in line for line in lines)
