"""Cross-cutting property-based tests (hypothesis).

Covers invariants that span modules: schema round-trips, the membership
predicate's algebra, storage-key isolation, and page determinism.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.browser.storage import PartitionedStorage, StorageKey
from repro.data.sites import BrandingLevel, SiteSpec
from repro.disconnect import parse_entities_json, serialize_entities_json
from repro.disconnect.model import EntitiesList, Entity
from repro.html import extract_features, page_similarity
from repro.rws import (
    RelatedWebsiteSet,
    RwsList,
    member_well_known_document,
    parse_rws_json,
    parse_well_known,
    primary_well_known_document,
    serialize_rws_json,
)
from repro.rws.wellknown import well_known_matches
from repro.serve import MembershipIndex
from repro.webgen import PageGenerator

LABEL = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)
TLD = st.sampled_from(["com", "net", "org", "de", "fr", "io"])


@st.composite
def domains(draw) -> str:
    return f"{draw(LABEL)}.{draw(TLD)}"


@st.composite
def rws_sets(draw) -> RelatedWebsiteSet:
    primary = draw(domains())
    member_pool = draw(st.lists(domains(), min_size=1, max_size=6,
                                unique=True))
    members = [domain for domain in member_pool if domain != primary]
    if not members:
        members = [f"other-{primary}"]
    split = draw(st.integers(0, len(members)))
    associated = members[:split]
    service = members[split:]
    rationales = {site: f"rationale for {site}"
                  for site in associated + service}
    cctlds: dict[str, list[str]] = {}
    if draw(st.booleans()):
        sld, primary_tld = primary.split(".", 1)
        variant_tld = draw(TLD.filter(lambda tld: tld != primary_tld))
        variant = f"{sld}.{variant_tld}"
        if variant != primary and variant not in members:
            cctlds = {primary: [variant]}
    return RelatedWebsiteSet(primary=primary, associated=associated,
                             service=service, cctlds=cctlds,
                             rationales=rationales)


class TestRwsSchemaRoundTrip:
    @settings(max_examples=50)
    @given(sets=st.lists(rws_sets(), max_size=4))
    def test_serialize_parse_identity(self, sets):
        # Drop cross-set duplicates (invalid lists are out of scope).
        seen: set[str] = set()
        unique_sets = []
        for rws_set in sets:
            if not (set(rws_set.members()) & seen):
                unique_sets.append(rws_set)
                seen.update(rws_set.members())
        original = RwsList(sets=unique_sets)
        parsed = parse_rws_json(serialize_rws_json(original))
        assert parsed.sets == original.sets

    @settings(max_examples=50)
    @given(rws_set=rws_sets())
    def test_membership_predicate_algebra(self, rws_set):
        rws_list = RwsList(sets=[rws_set])
        members = rws_set.members()
        # related is reflexive, symmetric, and total within the set.
        for site_a in members:
            assert rws_list.related(site_a, site_a)
            for site_b in members:
                assert rws_list.related(site_a, site_b)
                assert rws_list.related(site_b, site_a)
        # Non-members are related to nothing in the set.
        outsider = "zz-not-a-member.example"
        for site in members:
            assert not rws_list.related(outsider, site)

    @settings(max_examples=50)
    @given(sets=st.lists(rws_sets(), max_size=4))
    def test_compiled_index_matches_naive_scan(self, sets):
        seen: set[str] = set()
        unique_sets = []
        for rws_set in sets:
            if not (set(rws_set.members()) & seen):
                unique_sets.append(rws_set)
                seen.update(rws_set.members())
        rws_list = RwsList(sets=unique_sets)
        index = MembershipIndex.from_list(rws_list)
        probes = sorted(seen) + ["zz-not-a-member.example"]
        for site_a in probes:
            assert (index.set_for(site_a)
                    is rws_list.find_set_for(site_a))
            for site_b in probes:
                assert index.related(site_a, site_b) == \
                    rws_list.related(site_a, site_b)


class TestWellKnownRoundTrip:
    @settings(max_examples=50)
    @given(primary=domains())
    def test_member_document_identity(self, primary):
        primary_out, served = parse_well_known(
            member_well_known_document(primary))
        assert primary_out == primary
        assert served is None

    @settings(max_examples=50)
    @given(rws_set=rws_sets())
    def test_primary_document_identity(self, rws_set):
        primary_out, served = parse_well_known(
            primary_well_known_document(rws_set))
        assert primary_out == rws_set.primary
        assert served is not None
        assert well_known_matches(rws_set, served)
        assert served == rws_set


class TestEntitiesRoundTrip:
    @settings(max_examples=50)
    @given(
        names=st.lists(st.text(alphabet=string.ascii_letters + " ",
                               min_size=1, max_size=16).map(str.strip)
                       .filter(bool),
                       min_size=1, max_size=4, unique=True),
        data=st.data(),
    )
    def test_serialize_parse_identity(self, names, data):
        entities = []
        used: set[str] = set()
        for name in names:
            pool = data.draw(st.lists(domains(), min_size=1, max_size=4,
                                      unique=True))
            fresh = tuple(domain for domain in pool if domain not in used)
            if not fresh:
                continue
            used.update(fresh)
            entities.append(Entity(name=name, properties=fresh))
        if not entities:
            return
        original = EntitiesList(entities=entities)
        parsed = parse_entities_json(serialize_entities_json(original))
        assert parsed.domain_count() == original.domain_count()
        for entity in original:
            for domain in entity.domains():
                resolved = parsed.entity_for(domain)
                assert resolved is not None and resolved.name == entity.name


class TestStorageIsolation:
    @settings(max_examples=50)
    @given(site=domains(), partitions=st.lists(domains(), min_size=2,
                                               max_size=5, unique=True),
           value=st.text(max_size=10))
    def test_partitions_never_leak(self, site, partitions, value):
        storage = PartitionedStorage()
        for index, partition in enumerate(partitions):
            storage.set(StorageKey(site, partition), "uid",
                        f"{value}-{index}")
        for index, partition in enumerate(partitions):
            assert storage.get(StorageKey(site, partition), "uid") \
                == f"{value}-{index}"


class TestPageGeneration:
    @settings(max_examples=25, deadline=None)
    @given(domain=domains())
    def test_pages_deterministic_and_self_similar(self, domain):
        spec = SiteSpec(domain=domain, organization="Org",
                        brand="Brand", branding=BrandingLevel.NONE)
        generator = PageGenerator()
        html_a = generator.homepage(generator.blueprint(spec))
        html_b = generator.homepage(generator.blueprint(spec))
        assert html_a == html_b
        scores = page_similarity(html_a, html_b)
        assert scores.joint == 1.0

    @settings(max_examples=25, deadline=None)
    @given(domain_a=domains(), domain_b=domains())
    def test_similarity_symmetric_and_bounded(self, domain_a, domain_b):
        generator = PageGenerator()
        spec_a = SiteSpec(domain=domain_a, organization="A", brand="A")
        spec_b = SiteSpec(domain=domain_b, organization="B", brand="B")
        html_a = generator.homepage(generator.blueprint(spec_a))
        html_b = generator.homepage(generator.blueprint(spec_b))
        forward = page_similarity(html_a, html_b)
        backward = page_similarity(html_b, html_a)
        assert forward == backward
        for value in (forward.style, forward.structural, forward.joint):
            assert 0.0 <= value <= 1.0

    @settings(max_examples=25, deadline=None)
    @given(domain=domains())
    def test_generated_pages_always_extract(self, domain):
        spec = SiteSpec(domain=domain, organization="Org", brand="Brand")
        generator = PageGenerator()
        features = extract_features(
            generator.homepage(generator.blueprint(spec)))
        assert features.title
        assert features.tag_sequence
        assert features.footer_text
