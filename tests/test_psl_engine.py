"""Tests for the compiled PSL resolution engine.

Three concerns, matching the engine's three claims:

* **Equivalence** — the suffix-trie resolver must be
  semantics-identical to the candidate scan it replaced
  (:meth:`PublicSuffixList._resolve_scan`), including wildcard,
  exception, and implicit-``*`` rules, on the full embedded snapshot
  *and* on randomised rule sets; the same holds for the third
  resolver implementation, the zero-copy
  :class:`~repro.serve.BufferSuffixTrie` view a serialized epoch
  loads back; the fast-path normaliser must accept and reject
  exactly what the reference normaliser does.
* **Concurrency** — lock-free cached reads stay correct under
  concurrent resolve/cache_clear, and the cache counters stay
  consistent (misses/errors exact under the write lock, hits exact
  when uncontended, size bounded).
* **Bulk APIs** — ``resolve_many`` / ``etld_plus_one_many`` are value-
  and accounting-equivalent to the sequential loops they replace, at
  every layer that now batches (PSL, service resolver, browser
  engine).
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.browser.engine import Browser
from repro.browser.policy import BROWSER_POLICIES
from repro.psl import DomainError, PublicSuffixList, normalize_domain
from repro.psl.lookup import _normalize_reference
from repro.rws.model import RwsList
from repro.serve import Epoch, MembershipIndex
from repro.serve.service import RwsService

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                min_size=1, max_size=8)


def serialized_round_trip(psl: PublicSuffixList) -> PublicSuffixList:
    """Encode a PSL into a binary epoch and load it back.

    The returned resolver answers from the zero-copy
    :class:`~repro.serve.BufferSuffixTrie` view over the encoded
    buffer — the third trie implementation the differential tests
    pin to the candidate scan.
    """
    epoch = Epoch(index=MembershipIndex(RwsList()), snapshot=None,
                  psl=psl)
    return Epoch.from_buffer(epoch.to_buffer()).psl

#: Suffix tails exercising every rule kind in the embedded snapshot:
#: plain TLD, multi-label, wildcard (*.ck), exception (www.ck),
#: private section, deep wildcard (*.kawasaki.jp), unknown TLD.
SNAPSHOT_TAILS = ["com", "org", "co.uk", "ck", "www.ck", "github.io",
                  "kawasaki.jp", "city.kawasaki.jp", "zz"]

#: Labels for randomised rule sets: a tiny alphabet forces collisions
#: between exact, wildcard, and exception paths.
RULE_LABEL = st.sampled_from(["aa", "bb", "cc", "top", "alt", "*"])
DOMAIN_LABEL = st.sampled_from(["aa", "bb", "cc", "dd", "top", "alt", "www"])


@pytest.fixture(scope="module")
def buffer_psl(psl):
    return serialized_round_trip(psl)


class TestTrieEquivalence:
    @given(labels=st.lists(LABEL, min_size=1, max_size=4),
           tail=st.sampled_from(SNAPSHOT_TAILS))
    def test_trie_matches_scan_on_snapshot(self, psl, labels, tail):
        domain = ".".join(labels + [tail])
        assert psl._resolve_uncached(domain) == psl._resolve_scan(domain)

    @given(labels=st.lists(LABEL, min_size=1, max_size=5))
    def test_trie_matches_scan_on_random_domains(self, psl, labels):
        domain = ".".join(labels)
        assert psl._resolve_uncached(domain) == psl._resolve_scan(domain)

    @settings(max_examples=200)
    @given(rules=st.lists(
        st.tuples(st.booleans(), st.lists(RULE_LABEL, min_size=1, max_size=3)),
        min_size=1, max_size=8,
    ), domains=st.lists(
        st.lists(DOMAIN_LABEL, min_size=1, max_size=5), min_size=1,
        max_size=8,
    ))
    def test_trie_matches_scan_on_random_rule_sets(self, rules, domains):
        """Wildcard + exception + implicit-* equivalence, fuzzed.

        Rule texts are label sequences over a tiny alphabet (so exact,
        ``*``, and ``!`` paths collide constantly); the candidate scan
        is ground truth for every generated domain, including domains
        no rule matches (the implicit ``*`` rule).
        """
        lines = []
        for is_exception, labels in rules:
            body = ".".join(labels)
            lines.append("!" + body if is_exception and len(labels) >= 2
                         else body)
        psl = PublicSuffixList("\n".join(lines), cache_size=0)
        buffer_psl = serialized_round_trip(psl)
        for labels in domains:
            domain = ".".join(labels)
            expected = psl._resolve_scan(domain)
            assert psl._resolve_uncached(domain) == expected
            assert buffer_psl._resolve_uncached(domain) == expected

    @given(labels=st.lists(LABEL, min_size=1, max_size=4),
           tail=st.sampled_from(SNAPSHOT_TAILS))
    def test_serialized_trie_matches_scan_on_snapshot(self, psl,
                                                      buffer_psl,
                                                      labels, tail):
        domain = ".".join(labels + [tail])
        assert buffer_psl._resolve_uncached(domain) \
            == psl._resolve_scan(domain)

    def test_serialized_trie_rebuilds_an_equivalent_scan(self, buffer_psl):
        # The loaded PSL has no RuleIndex; _resolve_scan rebuilds one
        # from the buffer trie's own rules() walk.
        for domain in ["a.example.com", "foo.ck", "www.ck",
                       "a.city.kawasaki.jp", "example.zz"]:
            assert buffer_psl._resolve_uncached(domain) \
                == buffer_psl._resolve_scan(domain)

    def test_exception_inside_wildcard_takes_general_path(self, psl):
        # city.kawasaki.jp matches both *.kawasaki.jp and the
        # exception — the exact+wildcard collision the multi-path
        # walk exists for.
        match = psl.resolve("a.city.kawasaki.jp")
        assert match == psl._resolve_scan("a.city.kawasaki.jp")

    @given(raw=st.text(alphabet="abcXYZ019-._* ü", max_size=40))
    def test_fast_normalizer_equivalent_to_reference(self, raw):
        try:
            fast = normalize_domain(raw)
        except DomainError:
            fast = None
        try:
            reference = _normalize_reference(raw)
        except DomainError:
            reference = None
        assert fast == reference

    @given(labels=st.lists(LABEL, min_size=1, max_size=4))
    def test_fast_normalizer_is_identity_on_clean_hosts(self, labels):
        domain = ".".join(labels)
        assert normalize_domain(domain) == _normalize_reference(domain)


class TestErrorAccounting:
    def test_failed_resolutions_count_as_errors_not_misses(self):
        psl = PublicSuffixList()
        psl.resolve("example.com")
        before = psl.cache_stats()
        for _ in range(3):
            with pytest.raises(DomainError):
                psl.resolve("bad..domain")
        stats = psl.cache_stats()
        assert stats["errors"] == before["errors"] + 3
        assert stats["misses"] == before["misses"]  # never inflated
        assert stats["size"] == before["size"]

    def test_bulk_counts_errors_per_occurrence(self):
        psl = PublicSuffixList()
        sites = psl.etld_plus_one_many(
            ["bad..domain", "example.com", "bad..domain"])
        assert sites == [None, "example.com", None]
        stats = psl.cache_stats()
        assert stats["errors"] == 2
        assert stats["misses"] == 1

    def test_disabled_cache_counts_nothing(self):
        psl = PublicSuffixList(cache_size=0)
        with pytest.raises(DomainError):
            psl.resolve("bad..domain")
        assert psl.etld_plus_one_many(["bad..domain", "example.com"]) \
            == [None, "example.com"]
        assert psl.cache_stats() == {"hits": 0, "misses": 0, "errors": 0,
                                     "size": 0, "maxsize": 0}


class TestBulkApis:
    DOMAINS = ["act.eff.org", "example.co.uk", "foo.ck", "www.ck",
               "mysite.github.io", "example.zz", "co.uk", "act.eff.org",
               "bad..domain", "shop.city.kawasaki.jp"]

    def test_etld_plus_one_many_matches_sequential_loop(self):
        batched = PublicSuffixList()
        looped = PublicSuffixList()

        def sequential(domain):
            try:
                return looped.etld_plus_one(domain)
            except DomainError:
                return None

        assert batched.etld_plus_one_many(self.DOMAINS) \
            == [sequential(domain) for domain in self.DOMAINS]
        assert batched.cache_stats() == looped.cache_stats()

    def test_resolve_many_matches_resolve(self):
        psl = PublicSuffixList()
        valid = [d for d in self.DOMAINS if d != "bad..domain"]
        assert psl.resolve_many(valid) == [psl.resolve(d) for d in valid]

    def test_resolve_many_raises_on_invalid(self):
        psl = PublicSuffixList()
        with pytest.raises(DomainError):
            psl.resolve_many(["example.com", "bad..domain"])
        assert psl.cache_stats()["errors"] == 1

    def test_bulk_promotions_respect_cache_bound(self):
        psl = PublicSuffixList(cache_size=4)
        psl.etld_plus_one_many([f"site-{i}.example.com" for i in range(32)])
        assert psl.cache_stats()["size"] <= 4

    def test_service_resolve_hosts_matches_loop(self):
        batched = RwsService()
        looped = RwsService()
        hosts = ["www.example.com", "example.com", "co.uk", "bad..host",
                 "www.example.com"]
        try:
            assert batched.resolve_hosts(hosts) \
                == [looped.resolve_host(host) for host in hosts]
            assert batched.stats.resolver_errors \
                == looped.stats.resolver_errors
        finally:
            batched.queue.shutdown()
            looped.queue.shutdown()

    def test_browser_visit_with_embeds_matches_singles(self, psl):
        browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                          rws_list=RwsList(), psl=psl)
        embeds = ["cdn.example.com", "co.uk", "bad..host", "eff.org"]
        page, sites = browser.visit_with_embeds("www.example.com", embeds)
        assert page.site == browser.visit("www.example.com").site

        def single(host):
            try:
                return psl.etld_plus_one(host)
            except DomainError:
                return None

        assert sites == [single(host) for host in embeds]
        assert browser.resolve_sites(embeds) == sites

    def test_browser_visit_with_embeds_rejects_bare_suffix_top(self, psl):
        browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                          rws_list=RwsList(), psl=psl)
        with pytest.raises(ValueError):
            browser.visit_with_embeds("co.uk", ["example.com"])


class TestConcurrency:
    VALID = ["act.eff.org", "www.example.co.uk", "a.example.com",
             "foo.ck", "www.ck", "mysite.github.io", "example.zz",
             "shop.city.kawasaki.jp", "co.uk", "example.org"]
    INVALID = ["bad..domain", "-leading.example", "sp ace.example"]

    def test_concurrent_resolve_and_clear_stay_correct(self):
        psl = PublicSuffixList(cache_size=64)
        reference = PublicSuffixList(cache_size=0)
        expected = {}
        for domain in self.VALID:
            expected[domain] = reference.resolve(domain)
        pool = self.VALID * 3 + self.INVALID
        failures: list = []
        barrier = threading.Barrier(5)

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            barrier.wait()
            for _ in range(1500):
                domain = rng.choice(pool)
                try:
                    match = psl.resolve(domain)
                except DomainError:
                    if domain not in self.INVALID:
                        failures.append(("unexpected DomainError", domain))
                    continue
                if match != expected[domain]:
                    failures.append((domain, match))

        def clear() -> None:
            barrier.wait()
            for _ in range(40):
                psl.cache_clear()

        threads = [threading.Thread(target=hammer, args=(seed,))
                   for seed in range(4)]
        threads.append(threading.Thread(target=clear))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        stats = psl.cache_stats()
        # Counter consistency: misses/errors are lock-exact, hits may
        # undercount under contention but never overcount, and the
        # generational fold keeps size bounded.
        total_ops = 4 * 1500
        assert 0 <= stats["size"] <= stats["maxsize"]
        assert 0 < stats["misses"] <= total_ops
        assert 0 <= stats["hits"] <= total_ops
        assert 0 <= stats["errors"] <= total_ops
        assert stats["hits"] + stats["misses"] + stats["errors"] <= total_ops

    def test_counters_exact_after_quiescence(self):
        # The same instance is exact again once contention stops.
        psl = PublicSuffixList(cache_size=64)
        psl.resolve("example.com")
        psl.cache_clear()
        for domain in self.VALID:
            psl.resolve(domain)
        for domain in self.VALID:
            psl.resolve(domain)
        with pytest.raises(DomainError):
            psl.resolve("bad..domain")
        stats = psl.cache_stats()
        assert stats["misses"] == len(self.VALID)
        assert stats["hits"] == len(self.VALID)
        assert stats["errors"] == 1
        assert stats["size"] == len(self.VALID)

    def test_concurrent_bulk_and_single_resolution(self):
        psl = PublicSuffixList(cache_size=128)
        reference = PublicSuffixList(cache_size=0)
        expected = {d: reference.resolve(d).registrable_domain
                    for d in self.VALID}
        failures: list = []

        def bulk(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(200):
                batch = [rng.choice(self.VALID) for _ in range(8)]
                sites = psl.etld_plus_one_many(batch)
                for domain, site in zip(batch, sites):
                    if site != expected[domain]:
                        failures.append((domain, site))

        threads = [threading.Thread(target=bulk, args=(seed,))
                   for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        assert psl.cache_stats()["size"] <= 128
