"""Unit + property tests for public-suffix lookup."""

import pytest
from hypothesis import given, strategies as st

from repro.psl import DomainError, PublicSuffixList
from repro.psl.lookup import normalize_domain

LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789",
                min_size=1, max_size=8)


class TestNormalizeDomain:
    def test_lowercases(self):
        assert normalize_domain("Example.COM") == "example.com"

    def test_strips_trailing_dot(self):
        assert normalize_domain("example.com.") == "example.com"

    def test_idna_encodes(self):
        assert normalize_domain("bücher.de") == "xn--bcher-kva.de"

    @pytest.mark.parametrize("bad", [
        "", ".", "..", "a..b", "-leading.com", "trailing-.com",
        "sp ace.com", "under_score.com", "a" * 64 + ".com",
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(DomainError):
            normalize_domain(bad)

    def test_non_string_rejected(self):
        with pytest.raises(DomainError):
            normalize_domain(42)  # type: ignore[arg-type]

    def test_total_length_limit(self):
        long_domain = ".".join(["a" * 60] * 5)
        with pytest.raises(DomainError):
            normalize_domain(long_domain)


class TestResolution:
    def test_simple_tld(self, psl):
        assert psl.public_suffix("example.com") == "com"
        assert psl.etld_plus_one("example.com") == "example.com"

    def test_multi_level_suffix(self, psl):
        assert psl.public_suffix("shop.example.co.uk") == "co.uk"
        assert psl.etld_plus_one("shop.example.co.uk") == "example.co.uk"

    def test_bare_suffix_has_no_registrable(self, psl):
        assert psl.etld_plus_one("co.uk") is None
        assert psl.is_public_suffix("co.uk")

    def test_wildcard_rule(self, psl):
        # *.ck: any direct child of ck is itself a public suffix.
        assert psl.public_suffix("foo.ck") == "foo.ck"
        assert psl.etld_plus_one("bar.foo.ck") == "bar.foo.ck"

    def test_exception_rule_beats_wildcard(self, psl):
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.etld_plus_one("www.ck") == "www.ck"

    def test_unknown_tld_uses_implicit_rule(self, psl):
        match = psl.resolve("example.zz")
        assert match.public_suffix == "zz"
        assert match.registrable_domain == "example.zz"
        assert match.rule is None

    def test_private_section_suffix(self, psl):
        match = psl.resolve("mysite.github.io")
        assert match.public_suffix == "github.io"
        assert match.is_private_suffix
        assert match.registrable_domain == "mysite.github.io"

    def test_empty_psl_rejected(self):
        with pytest.raises(ValueError):
            PublicSuffixList("// only comments\n")


class TestEtldPlusOnePredicate:
    def test_exact_registrable(self, psl):
        assert psl.is_etld_plus_one("example.com")
        assert psl.is_etld_plus_one("example.co.uk")

    def test_subdomain_is_not(self, psl):
        assert not psl.is_etld_plus_one("a.example.com")

    def test_bare_suffix_is_not(self, psl):
        assert not psl.is_etld_plus_one("com")
        assert not psl.is_etld_plus_one("co.uk")


class TestSameSite:
    def test_paper_example(self, psl):
        # §2: eff.org and act.eff.org are the same site;
        # facebook.com and mayoclinic.com are not.
        assert psl.same_site("eff.org", "act.eff.org")
        assert not psl.same_site("facebook.com", "mayoclinic.com")

    def test_suffix_never_same_site(self, psl):
        assert not psl.same_site("co.uk", "co.uk")


class TestSecondLevelLabel:
    def test_paper_examples(self, psl):
        assert psl.second_level_label("autobild.de") == "autobild"
        assert psl.second_level_label("bild.de") == "bild"
        assert psl.second_level_label("poalim.xyz") == "poalim"

    def test_multi_level_suffix(self, psl):
        assert psl.second_level_label("a.example.co.uk") == "example"

    def test_none_for_suffix(self, psl):
        assert psl.second_level_label("co.uk") is None


class TestProperties:
    @given(labels=st.lists(LABEL, min_size=2, max_size=5))
    def test_registrable_domain_is_suffix_of_input(self, psl, labels):
        domain = ".".join(labels)
        match = psl.resolve(domain)
        assert match.domain.endswith(match.public_suffix)
        if match.registrable_domain is not None:
            assert match.domain.endswith(match.registrable_domain)
            assert match.registrable_domain.endswith(match.public_suffix)

    @given(labels=st.lists(LABEL, min_size=2, max_size=5))
    def test_registrable_is_suffix_plus_one_label(self, psl, labels):
        domain = ".".join(labels)
        match = psl.resolve(domain)
        if match.registrable_domain is not None:
            suffix_labels = match.public_suffix.count(".") + 1
            registrable_labels = match.registrable_domain.count(".") + 1
            assert registrable_labels == suffix_labels + 1

    @given(labels=st.lists(LABEL, min_size=2, max_size=4))
    def test_resolution_is_idempotent(self, psl, labels):
        domain = ".".join(labels)
        first = psl.resolve(domain)
        second = psl.resolve(first.domain)
        assert first == second

    @given(labels=st.lists(LABEL, min_size=2, max_size=4),
           extra=LABEL)
    def test_subdomain_shares_registrable(self, psl, labels, extra):
        domain = ".".join(labels)
        base = psl.resolve(domain)
        if base.registrable_domain is None:
            return
        sub = psl.resolve(f"{extra}.{domain}")
        # Adding a label can only keep or lengthen the public suffix
        # (wildcards); when the suffix is unchanged, the registrable
        # domain must be shared.
        if sub.public_suffix == base.public_suffix:
            assert sub.registrable_domain == base.registrable_domain


class TestResolutionCache:
    def test_cached_result_identical_to_uncached(self):
        cached = PublicSuffixList()
        uncached = PublicSuffixList(cache_size=0)
        domains = ["act.eff.org", "example.co.uk", "a.b.example.com",
                   "EFF.org.", "xn--bcher-kva.example", "foo.ck", "www.ck"]
        for domain in domains:
            first = cached.resolve(domain)
            second = cached.resolve(domain)  # served from cache
            assert first == second == uncached.resolve(domain)
        stats = cached.cache_stats()
        assert stats["hits"] == len(domains)
        assert stats["misses"] == len(domains)
        assert stats["size"] == len(domains)

    def test_invalid_domains_raise_every_time(self):
        psl = PublicSuffixList()
        for _ in range(2):
            with pytest.raises(DomainError):
                psl.resolve("bad..domain")
        assert psl.cache_stats()["size"] == 0

    def test_cache_clear_resets_counters(self):
        psl = PublicSuffixList()
        psl.resolve("example.com")
        psl.resolve("example.com")
        psl.cache_clear()
        stats = psl.cache_stats()
        assert stats == {"hits": 0, "misses": 0, "errors": 0, "size": 0,
                         "maxsize": stats["maxsize"]}

    def test_cache_respects_bound_and_evicts_lru(self):
        psl = PublicSuffixList(cache_size=2)
        psl.resolve("a.example.com")
        psl.resolve("b.example.com")
        psl.resolve("a.example.com")  # refresh a -> b is now the LRU
        psl.resolve("c.example.com")  # evicts b
        assert psl.cache_stats()["size"] == 2
        hits_before = psl.cache_stats()["hits"]
        psl.resolve("a.example.com")
        assert psl.cache_stats()["hits"] == hits_before + 1
        psl.resolve("b.example.com")  # must re-resolve (was evicted)
        assert psl.cache_stats()["hits"] == hits_before + 1

    def test_disabled_cache_still_resolves(self):
        psl = PublicSuffixList(cache_size=0)
        assert psl.etld_plus_one("act.eff.org") == "eff.org"
        assert psl.cache_stats()["size"] == 0
        assert psl.cache_stats()["maxsize"] == 0
