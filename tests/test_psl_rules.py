"""Unit tests for PSL rule parsing and matching."""

import pytest

from repro.psl.rules import Rule, RuleIndex, RuleKind, parse_rule, parse_rules


class TestParseRule:
    def test_normal_rule(self):
        rule = parse_rule("co.uk")
        assert rule.kind is RuleKind.NORMAL
        assert rule.labels == ("uk", "co")
        assert rule.match_length == 2

    def test_wildcard_rule(self):
        rule = parse_rule("*.ck")
        assert rule.kind is RuleKind.WILDCARD
        assert rule.labels == ("ck", "*")
        assert rule.match_length == 2

    def test_exception_rule(self):
        rule = parse_rule("!www.ck")
        assert rule.kind is RuleKind.EXCEPTION
        assert rule.labels == ("ck", "www")
        assert rule.match_length == 1  # One fewer than its labels.

    def test_case_folding(self):
        assert parse_rule("CO.UK").labels == ("uk", "co")

    def test_private_flag(self):
        rule = parse_rule("github.io", is_private=True)
        assert rule.is_private

    @pytest.mark.parametrize("bad", ["", "   ", ".", "a..b", ".com", "com.",
                                     "!single"])
    def test_malformed_rules_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_rule(bad)

    def test_comment_rejected(self):
        with pytest.raises(ValueError):
            parse_rule("// a comment")

    def test_round_trip_text(self):
        for text in ("com", "co.uk", "*.ck", "!www.ck"):
            assert parse_rule(text).as_text() == text


class TestParseRules:
    def test_skips_comments_and_blanks(self):
        rules = list(parse_rules("// header\n\ncom\n  \norg\n"))
        assert [r.as_text() for r in rules] == ["com", "org"]

    def test_private_section_markers(self):
        text = (
            "com\n"
            "// ===BEGIN PRIVATE DOMAINS===\n"
            "github.io\n"
            "// ===END PRIVATE DOMAINS===\n"
            "org\n"
        )
        rules = list(parse_rules(text))
        assert [r.is_private for r in rules] == [False, True, False]


class TestRuleMatching:
    def test_normal_match(self):
        rule = parse_rule("co.uk")
        assert rule.matches(("uk", "co", "example"))
        assert not rule.matches(("uk",))
        assert not rule.matches(("com", "example"))

    def test_wildcard_matches_any_label(self):
        rule = parse_rule("*.ck")
        assert rule.matches(("ck", "anything", "www"))
        assert not rule.matches(("ck",))

    def test_exception_matches_like_normal(self):
        rule = parse_rule("!www.ck")
        assert rule.matches(("ck", "www"))
        assert not rule.matches(("ck", "other"))


class TestRuleIndex:
    def test_candidates_bucketed_by_tld(self):
        index = RuleIndex.from_rules(
            [parse_rule("com"), parse_rule("co.uk"), parse_rule("org.uk")]
        )
        uk_candidates = index.candidates(("uk", "example"))
        assert {rule.as_text() for rule in uk_candidates} == {"co.uk", "org.uk"}
        assert index.candidates(("net",)) == []

    def test_len_and_iter(self):
        rules = [parse_rule("com"), parse_rule("org")]
        index = RuleIndex.from_rules(rules)
        assert len(index) == 2
        assert {rule.as_text() for rule in index} == {"com", "org"}

    def test_empty_labels(self):
        index = RuleIndex.from_rules([parse_rule("com")])
        assert index.candidates(()) == []


def test_rule_is_hashable_value_object():
    assert parse_rule("co.uk") == parse_rule("co.uk")
    assert len({parse_rule("co.uk"), parse_rule("co.uk")}) == 1
    assert isinstance(Rule(labels=("uk",), kind=RuleKind.NORMAL), Rule)
