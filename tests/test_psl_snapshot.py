"""Integrity tests for the embedded PSL snapshot."""

from repro.psl import default_psl, parse_rules
from repro.psl.rules import RuleKind
from repro.psl.snapshot import PSL_SNAPSHOT


class TestSnapshotIntegrity:
    RULES = list(parse_rules(PSL_SNAPSHOT))

    def test_no_duplicate_rules(self):
        texts = [rule.as_text() for rule in self.RULES]
        duplicates = {text for text in texts if texts.count(text) > 1}
        assert not duplicates, duplicates

    def test_all_rule_kinds_present(self):
        kinds = {rule.kind for rule in self.RULES}
        assert kinds == {RuleKind.NORMAL, RuleKind.WILDCARD,
                         RuleKind.EXCEPTION}

    def test_private_section_marked(self):
        private = [rule for rule in self.RULES if rule.is_private]
        assert private, "private section missing"
        assert any(rule.as_text() == "github.io" for rule in private)
        # ICANN rules must not be flagged private.
        assert not any(rule.is_private for rule in self.RULES
                       if rule.as_text() == "com")

    def test_every_exception_has_matching_wildcard(self):
        wildcard_tlds = {rule.labels[0] for rule in self.RULES
                         if rule.kind is RuleKind.WILDCARD}
        for rule in self.RULES:
            if rule.kind is RuleKind.EXCEPTION:
                assert rule.labels[0] in wildcard_tlds, rule.as_text()

    def test_covers_every_dataset_tld(self, rws_list, catalog):
        """Every domain in the embedded datasets must resolve to a
        non-implicit rule (i.e. its TLD is actually in the snapshot)."""
        psl = default_psl()
        domains = {record.site for record in rws_list.all_members()}
        domains.update(catalog.domains())
        for domain in sorted(domains):
            match = psl.resolve(domain)
            assert match.rule is not None, (
                f"{domain}: TLD missing from PSL snapshot"
            )

    def test_multi_level_suffixes_resolve(self):
        psl = default_psl()
        for domain, suffix in [
            ("example.co.uk", "co.uk"),
            ("example.com.br", "com.br"),
            ("example.co.il", "co.il"),
            ("example.com.tr", "com.tr"),
            ("example.co.in", "co.in"),
        ]:
            assert psl.public_suffix(domain) == suffix
