"""Tests for rendering and export."""

import csv
import io
import json

from repro.analysis.result import ExperimentResult
from repro.reporting import (
    render_cdf,
    render_comparison,
    render_series,
    render_table,
    rows_to_csv,
    to_json,
)


class TestTables:
    def test_alignment_and_borders(self):
        text = render_table(["name", "count"],
                            [["alpha", 1], ["longer-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # Every row the same width.
        assert "| alpha" in text
        assert "| 22" in text

    def test_title(self):
        text = render_table(["a"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_short_rows_padded(self):
        text = render_table(["a", "b"], [["only-a"]])
        assert "only-a" in text

    def test_comparison_rendering(self):
        result = ExperimentResult(
            experiment_id="T0", title="Demo",
            scalars={"metric": 1.23456},
            paper_values={"metric": 1.2},
        )
        text = render_comparison(result)
        assert "1.235" in text
        assert "1.2" in text

    def test_comparison_without_scalars(self):
        result = ExperimentResult(experiment_id="T0", title="Just a title")
        assert render_comparison(result) == "Just a title"

    def test_comparison_missing_paper_value(self):
        result = ExperimentResult(
            experiment_id="T0", title="Demo", scalars={"extra": 5.0},
        )
        rows = result.comparison_rows()
        assert rows == [["extra", 5.0, "—"]]


class TestCdfPlot:
    def test_monotone_curve(self):
        text = render_cdf({"sample": [1, 2, 3, 4, 5]}, width=30, height=8)
        assert "1.00 |" in text
        assert "0.00 |" in text
        assert "* sample" in text

    def test_multiple_series_get_distinct_glyphs(self):
        text = render_cdf({"one": [1, 2], "two": [3, 4]}, width=20, height=6)
        assert "* one" in text
        assert "o two" in text

    def test_empty_series_handled(self):
        text = render_cdf({"empty": []}, title="T")
        assert "(no data)" in text

    def test_constant_sample(self):
        text = render_cdf({"constant": [5.0, 5.0, 5.0]}, width=20, height=5)
        assert "constant" in text

    def test_title_first_line(self):
        text = render_cdf({"s": [1.0]}, title="The Title")
        assert text.splitlines()[0] == "The Title"


class TestSeriesPlot:
    def test_rows_per_month(self):
        text = render_series(
            ["2023-01", "2023-02"],
            {"a": [1.0, 2.0], "b": [0.0, 5.0]},
            title="Counts",
        )
        lines = text.splitlines()
        assert lines[0] == "Counts"
        assert any("2023-01" in line for line in lines)
        assert any("2023-02" in line and "5" in line for line in lines)

    def test_missing_values_zero_filled(self):
        text = render_series(["m1", "m2"], {"a": [1.0]})
        assert "m2" in text


class TestExport:
    def test_csv_round_trip(self):
        text = rows_to_csv(["a", "b"], [["x", 1], ["y, z", 2]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["a", "b"]
        assert rows[2] == ["y, z", "2"]

    def test_json_serialises_dataclasses_and_enums(self):
        from repro.rws.model import SiteRole
        payload = {"role": SiteRole.ASSOCIATED, "values": [1, 2]}
        parsed = json.loads(to_json(payload))
        assert parsed["role"] == "associated"
        assert parsed["values"] == [1, 2]

    def test_json_serialises_experiment_result(self):
        result = ExperimentResult(experiment_id="F0", title="t",
                                  scalars={"x": 1.0})
        parsed = json.loads(to_json(result))
        assert parsed["experiment_id"] == "F0"
        assert parsed["scalars"] == {"x": 1.0}
