"""Tests for snapshot diffing and the history time series."""

import datetime as dt

import pytest

from repro.rws import RelatedWebsiteSet, RwsList, SiteRole
from repro.rws.diff import diff_lists
from repro.rws.history import (
    RwsHistory,
    iterate_months,
    month_key,
    parse_iso_date,
)


def make_list(*sets: RelatedWebsiteSet) -> RwsList:
    return RwsList(sets=list(sets))


SET_A = RelatedWebsiteSet(primary="a.com", associated=["a-news.com"])
SET_A_GROWN = RelatedWebsiteSet(primary="a.com",
                                associated=["a-news.com", "a-shop.com"])
SET_B = RelatedWebsiteSet(primary="b.com", associated=["b-news.com"])


class TestDiff:
    def test_identical_lists_empty_diff(self):
        diff = diff_lists(make_list(SET_A), make_list(SET_A))
        assert diff.is_empty

    def test_added_set(self):
        diff = diff_lists(make_list(SET_A), make_list(SET_A, SET_B))
        assert diff.added_sets == ["b.com"]
        assert {r.site for r in diff.added_members} == {"b.com", "b-news.com"}
        assert not diff.removed_sets

    def test_removed_set(self):
        diff = diff_lists(make_list(SET_A, SET_B), make_list(SET_A))
        assert diff.removed_sets == ["b.com"]

    def test_changed_set_membership(self):
        diff = diff_lists(make_list(SET_A), make_list(SET_A_GROWN))
        assert diff.changed_sets == ["a.com"]
        assert [r.site for r in diff.added_members] == ["a-shop.com"]
        assert not diff.removed_members


class TestMonthHelpers:
    def test_parse_iso_date(self):
        assert parse_iso_date("2024-03-26") == dt.date(2024, 3, 26)
        with pytest.raises(ValueError):
            parse_iso_date("26/03/2024")

    def test_month_key(self):
        assert month_key(dt.date(2024, 3, 26)) == "2024-03"

    def test_iterate_months_spans_year_boundary(self):
        months = iterate_months(dt.date(2023, 11, 5), dt.date(2024, 2, 1))
        assert months == ["2023-11", "2023-12", "2024-01", "2024-02"]

    def test_iterate_months_rejects_reversed(self):
        with pytest.raises(ValueError):
            iterate_months(dt.date(2024, 2, 1), dt.date(2024, 1, 1))


class TestHistory:
    @pytest.fixture()
    def history(self) -> RwsHistory:
        history = RwsHistory()
        history.add("2023-06-15", make_list(SET_A))
        history.add("2023-08-20", make_list(SET_A, SET_B))
        history.add("2023-07-10", make_list(SET_A_GROWN))
        return history

    def test_snapshots_sorted(self, history):
        dates = [s.date for s in history.snapshots]
        assert dates == sorted(dates)

    def test_earliest_latest(self, history):
        assert history.earliest.date == dt.date(2023, 6, 15)
        assert history.latest.date == dt.date(2023, 8, 20)

    def test_as_of(self, history):
        assert history.as_of("2023-05-01") is None
        june = history.as_of("2023-06-30")
        assert june is not None and len(june) == 1
        july = history.as_of("2023-07-15")
        assert july.sets[0].associated == ["a-news.com", "a-shop.com"]

    def test_composition_series_ramps(self, history):
        series = history.composition_series()
        assert list(series) == ["2023-06", "2023-07", "2023-08"]
        assert series["2023-06"][SiteRole.PRIMARY] == 1
        assert series["2023-08"][SiteRole.PRIMARY] == 2
        assert series["2023-07"][SiteRole.ASSOCIATED] == 2

    def test_diffs(self, history):
        diffs = history.diffs()
        assert len(diffs) == 2
        first_date, first_diff = diffs[0]
        assert first_date == dt.date(2023, 7, 10)
        assert first_diff.changed_sets == ["a.com"]

    def test_empty_history(self):
        history = RwsHistory()
        assert len(history) == 0
        assert history.monthly_dates() == []
        with pytest.raises(IndexError):
            _ = history.latest
