"""Tests for the RWS data model and membership predicate."""

import pytest

from repro.rws import MemberRecord, RelatedWebsiteSet, RwsList, SiteRole


@pytest.fixture()
def times_set() -> RelatedWebsiteSet:
    return RelatedWebsiteSet(
        primary="timesinternet.in",
        associated=["indiatimes.com", "cricbuzz.com"],
        service=["timescdn.net"],
        cctlds={"indiatimes.com": ["indiatimes.co.uk"]},
        rationales={
            "indiatimes.com": "Common branding.",
            "cricbuzz.com": "Affiliation shown in footer.",
            "timescdn.net": "Asset host.",
        },
    )


@pytest.fixture()
def small_list(times_set) -> RwsList:
    other = RelatedWebsiteSet(primary="bild.de", associated=["autobild.de"])
    return RwsList(sets=[times_set, other], as_of="2024-03-26")


class TestSetModel:
    def test_members_primary_first_no_duplicates(self, times_set):
        members = times_set.members()
        assert members[0] == "timesinternet.in"
        assert len(members) == len(set(members)) == 5

    def test_roles(self, times_set):
        assert times_set.role_of("timesinternet.in") is SiteRole.PRIMARY
        assert times_set.role_of("indiatimes.com") is SiteRole.ASSOCIATED
        assert times_set.role_of("timescdn.net") is SiteRole.SERVICE
        assert times_set.role_of("indiatimes.co.uk") is SiteRole.CCTLD
        assert times_set.role_of("unrelated.com") is None

    def test_case_insensitive(self, times_set):
        assert times_set.contains("INDIATIMES.COM")

    def test_member_records_carry_metadata(self, times_set):
        records = {r.site: r for r in times_set.member_records()}
        assert records["indiatimes.co.uk"].variant_of == "indiatimes.com"
        assert records["indiatimes.com"].rationale == "Common branding."
        assert records["timesinternet.in"].role is SiteRole.PRIMARY

    def test_size(self, times_set):
        assert times_set.size() == 5

    def test_normalisation_in_constructor(self):
        rws_set = RelatedWebsiteSet(primary="EXAMPLE.com",
                                    associated=["Other.COM"])
        assert rws_set.primary == "example.com"
        assert rws_set.associated == ["other.com"]


class TestListQueries:
    def test_find_set_for(self, small_list):
        found = small_list.find_set_for("cricbuzz.com")
        assert found is not None and found.primary == "timesinternet.in"
        assert small_list.find_set_for("nothing.net") is None

    def test_related_predicate_paper_example(self, small_list):
        # §2's worked example.
        assert small_list.related("timesinternet.in", "indiatimes.com")
        assert small_list.related("indiatimes.com", "cricbuzz.com")
        assert not small_list.related("indiatimes.com", "bild.de")

    def test_related_reflexive(self, small_list):
        assert small_list.related("nothing.net", "nothing.net")

    def test_related_symmetric(self, small_list):
        for a, b in [("timesinternet.in", "timescdn.net"),
                     ("autobild.de", "bild.de")]:
            assert small_list.related(a, b) == small_list.related(b, a)

    def test_composition(self, small_list):
        composition = small_list.composition()
        assert composition[SiteRole.PRIMARY] == 2
        assert composition[SiteRole.ASSOCIATED] == 3
        assert composition[SiteRole.SERVICE] == 1
        assert composition[SiteRole.CCTLD] == 1

    def test_duplicate_members_detected(self, times_set):
        conflicting = RelatedWebsiteSet(primary="rival.com",
                                        associated=["indiatimes.com"])
        bad_list = RwsList(sets=[times_set, conflicting])
        assert bad_list.duplicate_members() == ["indiatimes.com"]

    def test_members_with_role(self, small_list):
        associated = small_list.members_with_role(SiteRole.ASSOCIATED)
        assert {record.site for record in associated} == {
            "indiatimes.com", "cricbuzz.com", "autobild.de",
        }

    def test_primaries_order(self, small_list):
        assert small_list.primaries() == ["timesinternet.in", "bild.de"]

    def test_iteration_and_len(self, small_list):
        assert len(small_list) == 2
        assert [s.primary for s in small_list] == small_list.primaries()


def test_member_record_is_frozen():
    record = MemberRecord(site="a.com", role=SiteRole.ASSOCIATED,
                          set_primary="p.com")
    with pytest.raises(AttributeError):
        record.site = "b.com"  # type: ignore[misc]
