"""Tests for the canonical JSON schema and well-known documents."""

import json

import pytest

from repro.rws import (
    RelatedWebsiteSet,
    RwsList,
    SchemaError,
    member_well_known_document,
    parse_rws_json,
    parse_well_known,
    primary_well_known_document,
    serialize_rws_json,
)
from repro.rws.schema import domain_to_origin, origin_to_domain
from repro.rws.wellknown import well_known_matches

CANONICAL = """
{
  "sets": [
    {
      "contact": "owner@example.com",
      "primary": "https://example.com",
      "associatedSites": ["https://example-news.com"],
      "serviceSites": ["https://example-cdn.net"],
      "rationaleBySite": {
        "https://example-news.com": "Shared branding",
        "https://example-cdn.net": "Asset host"
      },
      "ccTLDs": {
        "https://example.com": ["https://example.de"]
      }
    }
  ]
}
"""


class TestOriginConversion:
    def test_round_trip(self):
        assert origin_to_domain("https://example.com") == "example.com"
        assert domain_to_origin("example.com") == "https://example.com"

    def test_bare_domain_accepted(self):
        assert origin_to_domain("Example.COM") == "example.com"

    def test_trailing_slash_stripped(self):
        assert origin_to_domain("https://example.com/") == "example.com"

    @pytest.mark.parametrize("bad", [
        "http://example.com", "", "https://example.com/path", "not a domain",
        123,
    ])
    def test_rejects(self, bad):
        with pytest.raises(SchemaError):
            origin_to_domain(bad)


class TestParse:
    def test_canonical_document(self):
        rws_list = parse_rws_json(CANONICAL, as_of="2024-03-26")
        assert len(rws_list) == 1
        rws_set = rws_list.sets[0]
        assert rws_set.primary == "example.com"
        assert rws_set.associated == ["example-news.com"]
        assert rws_set.service == ["example-cdn.net"]
        assert rws_set.cctlds == {"example.com": ["example.de"]}
        assert rws_set.rationales["example-news.com"] == "Shared branding"
        assert rws_set.contact == "owner@example.com"
        assert rws_list.as_of == "2024-03-26"

    @pytest.mark.parametrize("bad", [
        "not json",
        "[]",
        '{"sets": {}}',
        '{"sets": [{"associatedSites": []}]}',          # No primary.
        '{"sets": [{"primary": "https://a.com", "associatedSites": {}}]}',
        '{"sets": [{"primary": "https://a.com", "ccTLDs": []}]}',
        '{"sets": [{"primary": "https://a.com", "contact": 7}]}',
        '{"sets": [{"primary": "http://a.com"}]}',      # HTTP origin.
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(SchemaError):
            parse_rws_json(bad)


class TestSerialize:
    def test_round_trip(self):
        original = parse_rws_json(CANONICAL)
        text = serialize_rws_json(original)
        parsed = parse_rws_json(text)
        assert parsed.sets[0] == original.sets[0]

    def test_empty_subsets_omitted(self):
        rws_set = RelatedWebsiteSet(primary="solo.com",
                                    associated=["friend.com"])
        document = json.loads(serialize_rws_json(RwsList(sets=[rws_set])))
        entry = document["sets"][0]
        assert "serviceSites" not in entry
        assert "ccTLDs" not in entry

    def test_origins_are_https(self):
        rws_list = parse_rws_json(CANONICAL)
        document = json.loads(serialize_rws_json(rws_list))
        assert document["sets"][0]["primary"] == "https://example.com"


class TestWellKnown:
    SET = RelatedWebsiteSet(
        primary="example.com",
        associated=["example-news.com"],
        rationales={"example-news.com": "branding"},
    )

    def test_primary_document_round_trips(self):
        document = primary_well_known_document(self.SET)
        primary, served = parse_well_known(document)
        assert primary == "example.com"
        assert served is not None
        assert served.associated == ["example-news.com"]

    def test_member_document(self):
        document = member_well_known_document("example.com")
        primary, served = parse_well_known(document)
        assert primary == "example.com"
        assert served is None

    def test_matches_ignores_order_and_rationales(self):
        served = RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],
            rationales={},  # Rationales differ: still a match.
        )
        assert well_known_matches(self.SET, served)

    def test_mismatch_on_membership(self):
        served = RelatedWebsiteSet(primary="example.com",
                                   associated=["other.com"])
        assert not well_known_matches(self.SET, served)

    def test_mismatch_on_primary(self):
        served = RelatedWebsiteSet(primary="other.com",
                                   associated=["example-news.com"])
        assert not well_known_matches(self.SET, served)

    @pytest.mark.parametrize("bad", ["", "{}", "[1,2]", '{"foo": 1}'])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(SchemaError):
            parse_well_known(bad)
