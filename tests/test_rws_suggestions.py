"""Tests for the pre-submission remediation engine."""

import pytest

from repro.governance.defects import DefectBundle, realize_run
from repro.governance.planner import draft_set
from repro.netsim import Client
from repro.rws import (
    CheckCode,
    RelatedWebsiteSet,
    RwsList,
    Validator,
    remediation_text,
    suggest_fixes,
)


@pytest.fixture()
def base_set() -> RelatedWebsiteSet:
    return RelatedWebsiteSet(
        primary="acme.com",
        associated=["acmenews.com"],
        rationales={"acmenews.com": "branding"},
    )


def suggestions_for(submission: RelatedWebsiteSet,
                    published: RwsList | None = None):
    report = Validator(published=published).validate(submission)
    return suggest_fixes(report)


class TestSuggestions:
    def test_passing_report_has_no_suggestions(self, base_set):
        report = Validator().validate(base_set)
        assert suggest_fixes(report) == []
        assert "No fixes needed" in remediation_text(report)

    def test_one_suggestion_per_finding(self, base_set):
        base_set.primary = "www.acme.com"
        base_set.associated.append("a.acmenews.com")
        base_set.rationales["a.acmenews.com"] = "x"
        report = Validator().validate(base_set)
        suggestions = suggest_fixes(report)
        assert len(suggestions) == len(report.findings)

    def test_etld_suggestion_names_registrable_domain(self, base_set):
        base_set.associated.append("blog.acmenews.com")
        base_set.rationales["blog.acmenews.com"] = "x"
        suggestions = suggestions_for(base_set)
        etld = next(s for s in suggestions
                    if s.finding.code is CheckCode.ASSOCIATED_NOT_ETLD_PLUS_ONE)
        assert "did you mean acmenews.com?" in etld.action

    def test_well_known_suggestion_gives_url_and_shape(self, base_set):
        realized = realize_run(draft_set("fixme.com"),
                               DefectBundle(wk_missing=1), seed=3)
        report = Validator(client=Client(realized.web)).validate(
            realized.submission)
        suggestions = suggest_fixes(report)
        wk = next(s for s in suggestions
                  if s.finding.code is CheckCode.WELL_KNOWN_UNREACHABLE)
        assert "/.well-known/related-website-set.json" in wk.action
        assert '"primary"' in wk.action

    def test_rationale_suggestion(self, base_set):
        del base_set.rationales["acmenews.com"]
        suggestions = suggestions_for(base_set)
        assert any("rationaleBySite" in s.action for s in suggestions)

    def test_overlap_suggestion(self, base_set):
        published = RwsList(sets=[RelatedWebsiteSet(
            primary="rival.com", associated=["acmenews.com"],
            rationales={"acmenews.com": "x"},
        )])
        suggestions = suggestions_for(base_set, published)
        assert any("at most one set" in s.action for s in suggestions)

    def test_service_header_suggestion(self):
        realized = realize_run(draft_set("fixme.com"),
                               DefectBundle(service_no_xrobots=1), seed=3)
        report = Validator(client=Client(realized.web)).validate(
            realized.submission)
        assert any("X-Robots-Tag" in s.action
                   for s in suggest_fixes(report))

    def test_remediation_text_numbered(self, base_set):
        base_set.primary = "www.acme.com"
        report = Validator().validate(base_set)
        text = remediation_text(report)
        assert text.startswith("Remediation checklist:")
        assert "1. " in text

    def test_every_check_code_produces_specific_action(self):
        """No finding may fall through to the generic fallback."""
        from repro.rws.validation import Finding, ValidationReport

        for code in CheckCode:
            report = ValidationReport(findings=[
                Finding(code, "site.example", "generic message"),
            ])
            suggestion = suggest_fixes(report)[0]
            assert suggestion.action != "generic message", code


class TestCliIntegration:
    def test_validate_suggest_flag(self, tmp_path, capsys):
        import json

        from repro.cli import main

        document = {
            "sets": [{
                "primary": "https://example.com",
                "associatedSites": ["https://blog.example.com"],
                "rationaleBySite": {"https://blog.example.com": "blog"},
            }]
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(document))
        assert main(["validate", str(path), "--suggest"]) == 1
        output = capsys.readouterr().out
        assert "Remediation checklist:" in output
        assert "did you mean example.com?" in output
