"""Tests for the validation bot: every rule fires when (and only when)
its defect is present."""

import pytest

from repro.governance.defects import DefectBundle, realize_run
from repro.netsim import Client
from repro.rws import CheckCode, RelatedWebsiteSet, RwsList, Validator
from repro.rws.validation import TABLE3_CATEGORY, Severity


def codes(report) -> set[CheckCode]:
    return {finding.code for finding in report.findings}


@pytest.fixture()
def base_set() -> RelatedWebsiteSet:
    return RelatedWebsiteSet(
        primary="acme.com",
        associated=["acmenews.com", "acmeshop.com"],
        service=["acmecdn.net"],
        rationales={
            "acmenews.com": "Shared branding.",
            "acmeshop.com": "Shared branding.",
            "acmecdn.net": "Asset host.",
        },
    )


class TestStructuralRules:
    def test_clean_set_passes_structural(self, base_set):
        report = Validator().validate(base_set)
        assert report.passed, [f.message for f in report.findings]

    def test_primary_not_etld_plus_one(self, base_set):
        base_set.primary = "www.acme.com"
        report = Validator().validate(base_set)
        assert CheckCode.PRIMARY_NOT_ETLD_PLUS_ONE in codes(report)

    def test_associated_not_etld_plus_one(self, base_set):
        base_set.associated.append("blog.acmenews.com")
        base_set.rationales["blog.acmenews.com"] = "subdomain"
        report = Validator().validate(base_set)
        assert CheckCode.ASSOCIATED_NOT_ETLD_PLUS_ONE in codes(report)

    def test_service_not_etld_plus_one(self, base_set):
        base_set.service.append("cdn.acmecdn.net")
        base_set.rationales["cdn.acmecdn.net"] = "cdn"
        report = Validator().validate(base_set)
        assert CheckCode.SERVICE_NOT_ETLD_PLUS_ONE in codes(report)

    def test_missing_rationale_single_finding(self, base_set):
        del base_set.rationales["acmenews.com"]
        del base_set.rationales["acmeshop.com"]
        report = Validator().validate(base_set)
        rationale_findings = [f for f in report.findings
                              if f.code is CheckCode.MISSING_RATIONALE]
        assert len(rationale_findings) == 1

    def test_duplicate_member(self, base_set):
        base_set.associated.append("acmenews.com")
        report = Validator().validate(base_set)
        assert CheckCode.DUPLICATE_IN_SET in codes(report)

    def test_primary_listed_as_member(self, base_set):
        base_set.associated.append("acme.com")
        report = Validator().validate(base_set)
        assert CheckCode.DUPLICATE_IN_SET in codes(report)

    def test_singleton_set_rejected(self):
        report = Validator().validate(RelatedWebsiteSet(primary="alone.com"))
        assert CheckCode.EMPTY_SET in codes(report)

    def test_invalid_domain(self, base_set):
        base_set.associated.append("not a domain")
        report = Validator().validate(base_set)
        assert CheckCode.INVALID_DOMAIN in codes(report)

    def test_overlap_with_published_list(self, base_set):
        published = RwsList(sets=[RelatedWebsiteSet(
            primary="rival.com", associated=["acmenews.com"],
            rationales={"acmenews.com": "x"},
        )])
        report = Validator(published=published).validate(base_set)
        assert CheckCode.ALREADY_IN_OTHER_SET in codes(report)

    def test_resubmission_of_own_set_is_not_overlap(self, base_set):
        published = RwsList(sets=[base_set])
        report = Validator(published=published).validate(base_set)
        assert CheckCode.ALREADY_IN_OTHER_SET not in codes(report)


class TestCctldRules:
    def test_valid_variant_passes(self, base_set):
        base_set.cctlds = {"acme.com": ["acme.de", "acme.fr"]}
        report = Validator().validate(base_set)
        assert report.passed

    def test_alias_not_etld_plus_one(self, base_set):
        base_set.cctlds = {"acme.com": ["www.acme.de"]}
        report = Validator().validate(base_set)
        assert CheckCode.ALIAS_NOT_ETLD_PLUS_ONE in codes(report)

    def test_variant_with_different_sld_rejected(self, base_set):
        base_set.cctlds = {"acme.com": ["totallyother.de"]}
        report = Validator().validate(base_set)
        assert CheckCode.INVALID_CCTLD_VARIANT in codes(report)

    def test_variant_with_same_suffix_rejected(self, base_set):
        base_set.cctlds = {"acme.com": ["acme.com"]}
        report = Validator().validate(base_set)
        assert CheckCode.INVALID_CCTLD_VARIANT in codes(report)

    def test_variant_for_non_member_rejected(self, base_set):
        base_set.cctlds = {"stranger.com": ["stranger.de"]}
        report = Validator().validate(base_set)
        assert CheckCode.INVALID_CCTLD_VARIANT in codes(report)


class TestNetworkRules:
    """Network rules run against realize_run's deployed webs."""

    def _validate(self, base_set, bundle):
        realized = realize_run(base_set, bundle, seed=5)
        validator = Validator(client=Client(realized.web))
        return validator.validate(realized.submission)

    def test_fully_deployed_set_passes(self, base_set):
        report = self._validate(base_set, DefectBundle())
        assert report.passed, [f.message for f in report.findings]

    def test_missing_well_known(self, base_set):
        report = self._validate(base_set, DefectBundle(wk_missing=2))
        unreachable = [f for f in report.findings
                       if f.code is CheckCode.WELL_KNOWN_UNREACHABLE]
        assert len(unreachable) == 2

    def test_mismatched_well_known(self, base_set):
        report = self._validate(base_set, DefectBundle(wk_mismatch=1))
        assert CheckCode.WELL_KNOWN_MISMATCH in codes(report)

    def test_service_without_x_robots_tag(self, base_set):
        report = self._validate(base_set, DefectBundle(service_no_xrobots=1))
        assert CheckCode.SERVICE_MISSING_X_ROBOTS_TAG in codes(report)

    def test_invalid_well_known_json(self, base_set):
        realized = realize_run(base_set, DefectBundle(), seed=5)
        realized.web.set_json("acmenews.com",
                              "/.well-known/related-website-set.json",
                              "{not json")
        validator = Validator(client=Client(realized.web))
        report = validator.validate(realized.submission)
        assert CheckCode.WELL_KNOWN_INVALID in codes(report)

    def test_dead_member_reported_once(self, base_set):
        realized = realize_run(base_set, DefectBundle(), seed=5)
        realized.web.remove_host("acmeshop.com")
        validator = Validator(client=Client(realized.web))
        report = validator.validate(realized.submission)
        unreachable = [f for f in report.findings
                       if f.code is CheckCode.WELL_KNOWN_UNREACHABLE]
        assert len(unreachable) == 1


class TestReporting:
    def test_every_code_has_table3_category(self):
        assert set(TABLE3_CATEGORY) == set(CheckCode)

    def test_bot_comment_lists_errors(self, base_set):
        base_set.primary = "www.acme.com"
        report = Validator().validate(base_set)
        comment = report.bot_comment()
        assert "eTLD+1" in comment

    def test_bot_comment_for_pass(self, base_set):
        report = Validator().validate(base_set)
        assert "passed" in report.bot_comment()

    def test_table3_counts(self, base_set):
        base_set.primary = "www.acme.com"
        report = Validator().validate(base_set)
        counts = report.table3_counts()
        assert counts["Primary site isn't an eTLD+1"] == 1

    def test_severity_error_fails(self, base_set):
        base_set.primary = "www.acme.com"
        report = Validator().validate(base_set)
        assert not report.passed
        assert all(f.severity is Severity.ERROR for f in report.findings)
