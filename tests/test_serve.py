"""Tests for the serving layer (repro.serve)."""

import random
import threading
import time

import pytest

from repro.browser import BROWSER_POLICIES, Browser, GrantDecision
from repro.rws import RelatedWebsiteSet, RwsList, SiteRole, Validator
from repro.serve import (
    Epoch,
    MembershipIndex,
    RwsService,
    SnapshotStore,
    StaleSnapshotError,
    SubmissionStatus,
    ValidationQueue,
    apply_delta,
    membership_hash,
)


def small_list() -> RwsList:
    return RwsList(sets=[
        RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],
            service=["example-cdn.com"],
            cctlds={"example.com": ["example.co.uk"]},
            rationales={
                "example-news.com": "Shared branding with example.com.",
                "example-cdn.com": "Asset host for example.com.",
            },
        ),
        RelatedWebsiteSet(
            primary="other.com",
            associated=["other-shop.com"],
            rationales={"other-shop.com": "Affiliated storefront."},
        ),
    ])


class TestMembershipIndex:
    def setup_method(self):
        self.rws_list = small_list()
        self.index = MembershipIndex.from_list(self.rws_list)

    def test_counts(self):
        assert self.index.set_count == 2
        assert self.index.site_count == 6
        assert len(self.index) == 6
        assert "example.com" in self.index
        assert "missing.net" not in self.index

    def test_unknown_domain(self):
        assert self.index.lookup("missing.net") is None
        assert self.index.role_of("missing.net") is None
        assert self.index.set_for("missing.net") is None
        assert self.index.primary_of("missing.net") is None
        assert not self.index.related("missing.net", "example.com")
        assert not self.index.related("example.com", "missing.net")
        # An unknown domain is still trivially related to itself.
        assert self.index.related("missing.net", "missing.net")

    def test_domain_equal_to_primary(self):
        entry = self.index.lookup("example.com")
        assert entry is not None
        assert entry.role is SiteRole.PRIMARY
        assert entry.set_primary == "example.com"
        assert self.index.related("example.com", "example-news.com")
        assert self.index.related("example.com", "example.com")
        assert self.index.set_for("example.com") is self.rws_list.sets[0]

    def test_cctld_variant_member(self):
        entry = self.index.lookup("example.co.uk")
        assert entry is not None
        assert entry.role is SiteRole.CCTLD
        assert entry.variant_of == "example.com"
        assert self.index.related("example.co.uk", "example.com")
        assert self.index.related("example.co.uk", "example-cdn.com")
        assert not self.index.related("example.co.uk", "other.com")

    def test_case_insensitive(self):
        assert self.index.related("Example.COM", "EXAMPLE-NEWS.com")
        assert self.index.role_of("OTHER.com") is SiteRole.PRIMARY

    def test_batch_and_stream_agree_with_single(self):
        pairs = [
            ("example.com", "example-news.com"),
            ("example.com", "other.com"),
            ("missing.net", "missing.net"),
            ("other-shop.com", "other.com"),
        ]
        single = [self.index.related(a, b) for a, b in pairs]
        assert self.index.related_batch(pairs) == single
        streamed = list(self.index.query_stream(pairs))
        assert [r.related for r in streamed] == single
        assert streamed[0].set_primary == "example.com"
        assert streamed[0].role_b is SiteRole.ASSOCIATED
        assert streamed[1].set_primary is None

    def test_members_of(self):
        assert self.index.members_of("example.com") == [
            "example.com", "example-news.com", "example-cdn.com",
            "example.co.uk",
        ]
        assert self.index.members_of("missing.net") is None

    def test_interned_domains_are_shared(self):
        variant = self.index.lookup("example.co.uk")
        primary = self.index.lookup("example.com")
        assert variant is not None and primary is not None
        assert variant.set_primary is primary.site


class TestBufferIndexEquivalence:
    """The serialized index is a third implementation of the
    membership predicate; it must agree with both the compiled index
    and the naive list scan, on known and randomised (valid) lists."""

    @staticmethod
    def round_trip(rws_list):
        from repro.psl import default_psl

        snapshot = SnapshotStore().publish(rws_list)
        epoch = Epoch.compile(snapshot, default_psl())
        loaded = Epoch.from_buffer(epoch.to_buffer(include_psl=False),
                                   psl=epoch.psl)
        return epoch, loaded

    def test_small_list_three_way_agreement(self):
        rws_list = small_list()
        epoch, loaded = self.round_trip(small_list())
        sites = ["example.com", "example-news.com", "example-cdn.com",
                 "example.co.uk", "other.com", "other-shop.com",
                 "missing.net", "Example.COM"]
        for a in sites:
            for b in sites:
                expected = rws_list.related(a, b)
                assert epoch.index.related(a, b) == expected, (a, b)
                assert loaded.index.related(a, b) == expected, (a, b)
        assert membership_hash(loaded.snapshot.rws_list) \
            == epoch.snapshot.content_hash

    def test_randomized_lists_three_way_agreement(self):
        for seed in range(15):
            rng = random.Random(seed)
            sites = [f"s{i}.com" for i in range(rng.randint(4, 16))]
            rng.shuffle(sites)
            sets, cursor = [], 0
            while cursor + 2 <= len(sites):
                take = min(rng.randint(2, 5), len(sites) - cursor)
                members = sites[cursor:cursor + take]
                cursor += take
                split = rng.randint(1, len(members) - 1)
                sets.append(RelatedWebsiteSet(
                    primary=members[0],
                    associated=members[1:split + 1],
                    service=members[split + 1:],
                    rationales={m: "randomised" for m in members[1:]},
                ))
            rws_list = RwsList(sets=sets, version=f"rand-{seed}")
            epoch, loaded = self.round_trip(rws_list)
            probe = sites + ["absent.example"]
            for a in probe:
                for b in probe:
                    expected = rws_list.related(a, b)
                    assert epoch.index.related(a, b) == expected
                    assert loaded.index.related(a, b) == expected
            assert membership_hash(loaded.snapshot.rws_list) \
                == epoch.snapshot.content_hash


class TestSnapshotStore:
    def test_publish_and_dedup(self):
        store = SnapshotStore()
        first = store.publish(small_list())
        again = store.publish(small_list())
        assert first.version == 1
        assert again is first  # identical content: no new version
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        second = store.publish(grown)
        assert second.version == 2
        assert store.versions() == [1, 2]
        assert second.content_hash != first.content_hash

    def test_unknown_version_is_stale(self):
        store = SnapshotStore()
        with pytest.raises(StaleSnapshotError):
            store.delta(1)
        store.publish(small_list())
        with pytest.raises(StaleSnapshotError):
            store.get(7)
        with pytest.raises(StaleSnapshotError):
            store.delta(0)

    def test_delta_application(self):
        store = SnapshotStore()
        store.publish(small_list())
        grown = small_list()
        grown.sets[0].associated.append("example-mail.com")
        grown.sets[0].rationales["example-mail.com"] = "Webmail brand."
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        target = store.publish(grown)

        delta = store.delta(1)
        assert not delta.is_empty
        assert delta.diff.added_sets == ["new.com"]
        assert "example.com" in delta.diff.changed_sets

        client_copy = small_list()  # a faithful v1 client
        patched = apply_delta(client_copy, delta)
        assert membership_hash(patched) == target.content_hash
        patched_index = MembershipIndex.from_list(patched)
        assert patched_index.related("example-mail.com", "example.co.uk")
        assert patched_index.related("new.com", "new-blog.com")

    def test_stale_client_copy_is_rejected(self):
        store = SnapshotStore()
        store.publish(small_list())
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        store.publish(grown)
        delta = store.delta(1)

        diverged = small_list()
        diverged.sets[1].associated.append("rogue.com")
        with pytest.raises(StaleSnapshotError):
            apply_delta(diverged, delta)

    def test_metadata_only_change_is_not_a_new_version(self):
        # Rationale/contact edits are submitter metadata, not membership:
        # they must neither mint a version nor break the delta protocol.
        store = SnapshotStore()
        first = store.publish(small_list())
        reworded = small_list()
        reworded.sets[0].rationales["example-news.com"] = "New wording."
        reworded.sets[0].contact = "pressdesk@example.com"
        assert store.publish(reworded) is first
        delta = store.delta(1)
        assert delta.is_empty
        patched = apply_delta(small_list(), delta)
        assert membership_hash(patched) == first.content_hash

    def test_empty_delta_round_trips(self):
        store = SnapshotStore()
        store.publish(small_list())
        delta = store.delta(1, 1)
        assert delta.is_empty
        patched = apply_delta(small_list(), delta)
        assert membership_hash(patched) == delta.to_hash

    @staticmethod
    def _three_versions() -> tuple[SnapshotStore, RwsList, RwsList, RwsList]:
        """A store holding v1 -> v2 (grown set) -> v3 (new set, removal)."""
        v1 = small_list()
        v2 = small_list()
        v2.sets[0].associated.append("example-mail.com")
        v2.sets[0].rationales["example-mail.com"] = "Webmail brand."
        v3 = small_list()
        v3.sets[0].associated.append("example-mail.com")
        v3.sets[0].rationales["example-mail.com"] = "Webmail brand."
        del v3.sets[1:]  # other.com's set is withdrawn
        v3.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        store = SnapshotStore()
        for version in (v1, v2, v3):
            store.publish(version)
        assert store.versions() == [1, 2, 3]
        return store, v1, v2, v3

    def test_multi_hop_delta_chain(self):
        # A client can walk v1 -> v2 -> v3 hop by hop, and each hop's
        # result is a valid base for the next.
        store, _, _, _ = self._three_versions()
        client = small_list()
        for hop in (2, 3):
            delta = store.delta(hop - 1, hop)
            client = apply_delta(client, delta)
            assert membership_hash(client) == store.get(hop).content_hash
        index = MembershipIndex.from_list(client)
        assert index.related("example-mail.com", "example.co.uk")
        assert index.related("new.com", "new-blog.com")
        assert not index.related("other.com", "other-shop.com")

    def test_multi_hop_chain_equals_direct_delta(self):
        # Hopping v1->v2->v3 and jumping v1->v3 converge on the same
        # membership content.
        store, _, _, _ = self._three_versions()
        hopped = apply_delta(apply_delta(small_list(), store.delta(1, 2)),
                             store.delta(2, 3))
        jumped = apply_delta(small_list(), store.delta(1, 3))
        assert membership_hash(hopped) == membership_hash(jumped)
        assert membership_hash(jumped) == store.get(3).content_hash

    def test_stale_client_mid_chain_is_rejected(self):
        # A client that skipped the v1->v2 hop (or diverged after it)
        # must not be able to apply the v2->v3 delta.
        store, _, _, _ = self._three_versions()
        delta_2_to_3 = store.delta(2, 3)
        still_at_v1 = small_list()
        with pytest.raises(StaleSnapshotError, match="does not match"):
            apply_delta(still_at_v1, delta_2_to_3)

        diverged = apply_delta(small_list(), store.delta(1, 2))
        diverged.sets[0].associated.append("rogue.com")
        with pytest.raises(StaleSnapshotError):
            apply_delta(diverged, delta_2_to_3)

    def test_recovery_after_stale_rejection(self):
        # The recovering client re-syncs from its true version and the
        # chain works again (the component-updater fallback story).
        store, _, _, _ = self._three_versions()
        client = small_list()  # honest v1 client
        with pytest.raises(StaleSnapshotError):
            apply_delta(client, store.delta(2, 3))
        client = apply_delta(client, store.delta(1, 3))
        assert membership_hash(client) == store.get(3).content_hash


class TestValidationQueue:
    def test_passing_submission(self):
        queue = ValidationQueue(Validator(), workers=2)
        ticket = queue.submit(small_list().sets[0])
        assert queue.drain(timeout=30)
        assert queue.poll(ticket) is SubmissionStatus.PASSED
        report = queue.report(ticket)
        assert report is not None and report.passed
        assert queue.stats.passed == 1
        queue.shutdown()

    def test_failing_submission(self):
        bad = RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],  # no rationale declared
        )
        queue = ValidationQueue(Validator())
        ticket = queue.submit(bad)
        assert queue.drain(timeout=30)
        assert queue.poll(ticket) is SubmissionStatus.REJECTED
        report = queue.report(ticket)
        assert report is not None and not report.passed
        assert any("rationale" in f.message.lower()
                   for f in report.findings)
        assert queue.stats.rejected == 1
        queue.shutdown()

    def test_batch_statuses_are_per_submission(self):
        queue = ValidationQueue(Validator(), workers=4)
        good = small_list().sets[0]
        bad = RelatedWebsiteSet(primary="lonely.com")  # empty set
        tickets = queue.submit_many([good, bad, good])
        assert queue.drain(timeout=30)
        statuses = [queue.poll(t) for t in tickets]
        assert statuses == [SubmissionStatus.PASSED,
                            SubmissionStatus.REJECTED,
                            SubmissionStatus.PASSED]
        assert queue.stats.completed == 3
        queue.shutdown()

    def test_unknown_ticket(self):
        queue = ValidationQueue(Validator())
        with pytest.raises(KeyError):
            queue.poll("sub-9999")

    def test_shutdown_with_pending_jobs_completes_them(self):
        # shutdown() must drain: jobs still queued when it is called
        # reach a terminal status, none are dropped, and the pool stops.
        release = threading.Event()

        class SlowValidator:
            def __init__(self):
                self._real = Validator()

            def validate(self, rws_set):
                release.wait(timeout=10)
                time.sleep(0.01)
                return self._real.validate(rws_set)

        queue = ValidationQueue(SlowValidator(), workers=2)
        tickets = queue.submit_many([small_list().sets[0]] * 6)
        # With 2 workers stalled on the event, most jobs are pending.
        assert any(not queue.poll(t).terminal for t in tickets)
        release.set()
        queue.shutdown()
        statuses = [queue.poll(t) for t in tickets]
        assert all(status.terminal for status in statuses)
        assert statuses.count(SubmissionStatus.PASSED) == 6
        assert queue.stats.completed == 6
        with pytest.raises(RuntimeError, match="shut down"):
            queue.submit(small_list().sets[0])


class TestRwsService:
    def setup_method(self):
        self.service = RwsService(workers=2)
        self.service.publish(small_list())

    def teardown_method(self):
        self.service.queue.shutdown()

    def test_query_resolves_hostnames(self):
        verdict = self.service.query("www.example.com", "example-news.com")
        assert verdict.related
        assert verdict.site_a == "example.com"

    def test_query_unknown_domain(self):
        verdict = self.service.query("stranger.org", "example.com")
        assert not verdict.related
        assert verdict.result is not None
        assert verdict.result.set_primary is None

    def test_query_unresolvable_host(self):
        verdict = self.service.query("com", "example.com")
        assert not verdict.related
        assert verdict.site_a is None
        assert self.service.stats.resolver_errors == 1

    def test_disabled_resolver_cache_still_serves(self):
        service = RwsService(resolver_cache_size=0)
        service.publish(small_list())
        assert service.query("www.example.com", "example-news.com").related
        assert service.query("www.example.com", "example-news.com").related
        assert service.stats.resolver_hits == 0  # nothing is cached
        service.queue.shutdown()

    def test_republish_identical_content_keeps_index(self):
        index_before = self.service.index
        snapshot = self.service.publish(small_list())
        assert snapshot.version == 1
        assert self.service.index is index_before  # no recompile

    def test_republish_recompiles_index(self):
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        snapshot = self.service.publish(grown)
        assert snapshot.version == 2
        assert self.service.query("new.com", "new-blog.com").related
        delta = self.service.delta_since(1)
        patched = apply_delta(small_list(), delta)
        assert membership_hash(patched) == snapshot.content_hash

    def test_submission_checked_against_served_list(self):
        # Overlaps with the served list must be rejected...
        overlapping = RelatedWebsiteSet(
            primary="intruder.com",
            associated=["example-news.com"],
            rationales={"example-news.com": "We want this one too."},
        )
        ticket = self.service.submit(overlapping)
        assert self.service.drain(timeout=30)
        assert self.service.poll(ticket) is SubmissionStatus.REJECTED
        report = self.service.queue.report(ticket)
        assert report is not None
        assert any("already belongs" in f.message for f in report.findings)
        # ...while disjoint submissions pass.
        fresh = RelatedWebsiteSet(
            primary="fresh.com",
            associated=["fresh-shop.com"],
            rationales={"fresh-shop.com": "Same operator."},
        )
        ticket = self.service.submit(fresh)
        assert self.service.drain(timeout=30)
        assert self.service.poll(ticket) is SubmissionStatus.PASSED

    def test_concurrent_queries_publishes_and_submissions(self):
        # The publication swap and the stats counters are shared with
        # query threads and validation workers; under a rapid switch
        # interval every counted event must still land exactly once.
        import sys

        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        per_thread, threads_n = 250, 4
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            def query_loop():
                for _ in range(per_thread):
                    self.service.query("www.example.com", "example-news.com")

            def publish_loop():
                for i in range(40):
                    self.service.publish(grown if i % 2 else small_list())

            threads = [threading.Thread(target=query_loop)
                       for _ in range(threads_n)]
            threads.append(threading.Thread(target=publish_loop))
            for _ in range(8):
                self.service.submit(small_list().sets[0])
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert self.service.drain(timeout=30)
        finally:
            sys.setswitchinterval(old_interval)
        report = self.service.stats_report()
        assert report["queries"] == per_thread * threads_n
        assert report["related_hits"] == per_thread * threads_n
        assert report["publishes"] == 40 + 1  # setup publish included
        assert report["queue_passed"] == 8

    def test_stats_report_counters(self):
        self.service.query_batch([
            ("example.com", "example-news.com"),
            ("example.com", "example-news.com"),
            ("other.com", "example.com"),
        ])
        report = self.service.stats_report()
        assert report["queries"] == 3
        assert report["related_hits"] == 2
        assert report["resolver_hits"] > 0  # repeated hosts hit the LRU
        assert report["index_sets"] == 2
        assert report["snapshot_version"] == 2 or report["snapshot_version"] == 1
        assert report["mean_query_ns"] > 0


class TestEpoch:
    """The tentpole invariants: immutable epochs, atomic swaps."""

    def test_epoch_value_is_immutable(self):
        service = RwsService()
        try:
            service.publish(small_list())
            epoch = service.epoch
            with pytest.raises(AttributeError):
                epoch.snapshot = None
            with pytest.raises(AttributeError):
                epoch.index = MembershipIndex(RwsList())
        finally:
            service.queue.shutdown()

    def test_bootstrap_epoch_before_any_publish(self):
        service = RwsService()
        try:
            epoch = service.epoch
            assert epoch.version == 0
            assert epoch.snapshot is None
            assert epoch.content_hash == ""
            assert len(epoch.rws_list.sets) == 0
            assert not service.query("a.com", "b.com").related
        finally:
            service.queue.shutdown()

    def test_require_version(self):
        service = RwsService()
        try:
            service.publish(small_list())
            service.epoch.require_version(1)
            with pytest.raises(StaleSnapshotError, match="serves v1"):
                service.epoch.require_version(2)
        finally:
            service.queue.shutdown()

    def test_publish_swaps_the_whole_epoch(self):
        service = RwsService()
        try:
            service.publish(small_list())
            before = service.epoch
            grown = small_list()
            grown.sets.append(RelatedWebsiteSet(
                primary="new.com", associated=["new-blog.com"],
                rationales={"new-blog.com": "Same publisher."},
            ))
            service.publish(grown)
            after = service.epoch
            assert after is not before
            assert (before.version, after.version) == (1, 2)
            # The superseded epoch still serves its own consistent view.
            assert not before.index.related("new.com", "new-blog.com")
            assert after.index.related("new.com", "new-blog.com")
            assert before.snapshot is not after.snapshot
        finally:
            service.queue.shutdown()

    def test_reader_sees_consistent_triples_under_publish_storm(self):
        # A captured epoch must always be an internally consistent
        # (index, snapshot, version) triple, even while publishes swap
        # the service's reference as fast as they can.
        import sys

        base = small_list()
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        # Alternating publishes mint a fresh version every time (the
        # store only dedups against the latest), so consistency is
        # keyed by content: a captured epoch's index must always match
        # its snapshot's membership hash.
        expected_sites = {
            membership_hash(rws_list): len({r.site for r
                                            in rws_list.all_members()})
            for rws_list in (base, grown)
        }

        service = RwsService()
        service.publish(base)
        failures: list[str] = []
        stop = threading.Event()

        def reader():
            while not stop.is_set():
                epoch = service.epoch  # one capture
                snapshot = epoch.snapshot
                if snapshot is None:
                    failures.append("snapshotless epoch after publish")
                    continue
                if snapshot.version != epoch.version:
                    failures.append("version drifted from snapshot")
                if epoch.content_hash != snapshot.content_hash:
                    failures.append("hash drifted from snapshot")
                expected = expected_sites.get(snapshot.content_hash)
                if expected is None:
                    failures.append("epoch serves an unpublished list")
                elif epoch.index.site_count != expected:
                    failures.append(
                        f"index of v{epoch.version} has "
                        f"{epoch.index.site_count} sites, "
                        f"expected {expected}")

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            readers = [threading.Thread(target=reader) for _ in range(3)]
            for thread in readers:
                thread.start()
            for i in range(200):
                service.publish(grown if i % 2 else base)
            stop.set()
            for thread in readers:
                thread.join(timeout=30)
        finally:
            sys.setswitchinterval(old_interval)
            service.queue.shutdown()
        assert failures == []

    def test_query_hot_path_takes_no_service_lock(self):
        # The acceptance gate: after the epoch capture, queries must
        # never touch the publication lock — publishes can then never
        # stall readers.  The service lock is replaced with a tattling
        # proxy; only the publisher thread may show up in its log.
        import sys

        service = RwsService()
        service.publish(small_list())
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))

        acquirers: set[int] = set()
        real_lock = service._lock

        class TattlingLock:
            def __enter__(self):
                acquirers.add(threading.get_ident())
                return real_lock.__enter__()

            def __exit__(self, *exc):
                return real_lock.__exit__(*exc)

            def acquire(self, *args, **kwargs):
                acquirers.add(threading.get_ident())
                return real_lock.acquire(*args, **kwargs)

            def release(self):
                return real_lock.release()

        service._lock = TattlingLock()
        pairs = [("www.example.com", "example-news.com"),
                 ("other.com", "example.com")] * 8
        sites = [("example.com", "example-news.com"), ("a.com", "b.com")] * 8

        def query_loop():
            for _ in range(150):
                service.query("www.example.com", "example-news.com")
                service.related_batch(pairs)
                service.related_sites_batch(sites)
                service.resolve_host("www.example.com")

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [threading.Thread(target=query_loop)
                       for _ in range(4)]
            publisher = threading.Thread(
                target=lambda: [service.publish(grown if i % 2 else
                                                small_list())
                                for i in range(50)])
            for thread in threads + [publisher]:
                thread.start()
            for thread in threads + [publisher]:
                thread.join(timeout=30)
        finally:
            sys.setswitchinterval(old_interval)
            service._lock = real_lock
            service.queue.shutdown()
        # Exactly one thread — the publisher — ever took the service
        # lock; every query/batch/resolve ran lock-free.
        assert acquirers == {publisher.ident}
        folded = service.stats
        assert folded.queries == 4 * 150 * (1 + len(pairs) + len(sites))

    def test_stats_fold_is_exact_after_threads_finish(self):
        service = RwsService()
        service.publish(small_list())
        per_thread, threads_n = 300, 4

        def loop():
            for _ in range(per_thread):
                service.query("www.example.com", "example-news.com")

        try:
            threads = [threading.Thread(target=loop)
                       for _ in range(threads_n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        finally:
            service.queue.shutdown()
        folded = service.stats
        assert folded.queries == per_thread * threads_n
        assert folded.related_hits == per_thread * threads_n
        report = service.stats_report()
        assert report["queries"] == per_thread * threads_n
        assert report["epoch"] == 1.0

    def test_epoch_compile_and_bootstrap_helpers(self):
        store = SnapshotStore()
        snapshot = store.publish(small_list())
        from repro.psl import default_psl

        epoch = Epoch.compile(snapshot, default_psl())
        assert epoch.version == 1
        assert epoch.index.related("example.com", "example-news.com")
        boot = Epoch.bootstrap(default_psl())
        assert boot.version == 0 and boot.snapshot is None


class TestBrowserUsesIndex:
    def test_engine_grants_via_compiled_index(self):
        browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                          rws_list=small_list())
        browser.visit("example.com")
        page = browser.visit("example.com")
        frame = page.embed("example-news.com")
        decision = browser.request_storage_access(frame)
        assert decision is GrantDecision.GRANTED_RWS
        assert browser.rws_index.related("example.com", "example-news.com")

    def test_engine_adopts_epoch_handles(self):
        service = RwsService()
        try:
            service.publish(small_list())
            browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                              rws_list=RwsList())
            browser.adopt_epoch(service.epoch)
            assert browser.rws_index is service.epoch.index
            assert browser.rws_index.related("example.com",
                                             "example-news.com")
        finally:
            service.queue.shutdown()

    def test_refresh_after_list_update(self):
        browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                          rws_list=small_list())
        assert not browser.rws_index.related("example.com", "late.com")
        browser.rws_list.sets[0].associated.append("late.com")
        # The compiled index is a snapshot; refresh picks up the change.
        assert not browser.rws_index.related("example.com", "late.com")
        browser.refresh_rws_index()
        assert browser.rws_index.related("example.com", "late.com")