"""Tests for the serving layer (repro.serve)."""

import pytest

from repro.browser import BROWSER_POLICIES, Browser, GrantDecision
from repro.rws import RelatedWebsiteSet, RwsList, SiteRole, Validator
from repro.serve import (
    MembershipIndex,
    RwsService,
    SnapshotStore,
    StaleSnapshotError,
    SubmissionStatus,
    ValidationQueue,
    apply_delta,
    membership_hash,
)


def small_list() -> RwsList:
    return RwsList(sets=[
        RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],
            service=["example-cdn.com"],
            cctlds={"example.com": ["example.co.uk"]},
            rationales={
                "example-news.com": "Shared branding with example.com.",
                "example-cdn.com": "Asset host for example.com.",
            },
        ),
        RelatedWebsiteSet(
            primary="other.com",
            associated=["other-shop.com"],
            rationales={"other-shop.com": "Affiliated storefront."},
        ),
    ])


class TestMembershipIndex:
    def setup_method(self):
        self.rws_list = small_list()
        self.index = MembershipIndex.from_list(self.rws_list)

    def test_counts(self):
        assert self.index.set_count == 2
        assert self.index.site_count == 6
        assert len(self.index) == 6
        assert "example.com" in self.index
        assert "missing.net" not in self.index

    def test_unknown_domain(self):
        assert self.index.lookup("missing.net") is None
        assert self.index.role_of("missing.net") is None
        assert self.index.set_for("missing.net") is None
        assert self.index.primary_of("missing.net") is None
        assert not self.index.related("missing.net", "example.com")
        assert not self.index.related("example.com", "missing.net")
        # An unknown domain is still trivially related to itself.
        assert self.index.related("missing.net", "missing.net")

    def test_domain_equal_to_primary(self):
        entry = self.index.lookup("example.com")
        assert entry is not None
        assert entry.role is SiteRole.PRIMARY
        assert entry.set_primary == "example.com"
        assert self.index.related("example.com", "example-news.com")
        assert self.index.related("example.com", "example.com")
        assert self.index.set_for("example.com") is self.rws_list.sets[0]

    def test_cctld_variant_member(self):
        entry = self.index.lookup("example.co.uk")
        assert entry is not None
        assert entry.role is SiteRole.CCTLD
        assert entry.variant_of == "example.com"
        assert self.index.related("example.co.uk", "example.com")
        assert self.index.related("example.co.uk", "example-cdn.com")
        assert not self.index.related("example.co.uk", "other.com")

    def test_case_insensitive(self):
        assert self.index.related("Example.COM", "EXAMPLE-NEWS.com")
        assert self.index.role_of("OTHER.com") is SiteRole.PRIMARY

    def test_batch_and_stream_agree_with_single(self):
        pairs = [
            ("example.com", "example-news.com"),
            ("example.com", "other.com"),
            ("missing.net", "missing.net"),
            ("other-shop.com", "other.com"),
        ]
        single = [self.index.related(a, b) for a, b in pairs]
        assert self.index.related_batch(pairs) == single
        streamed = list(self.index.query_stream(pairs))
        assert [r.related for r in streamed] == single
        assert streamed[0].set_primary == "example.com"
        assert streamed[0].role_b is SiteRole.ASSOCIATED
        assert streamed[1].set_primary is None

    def test_members_of(self):
        assert self.index.members_of("example.com") == [
            "example.com", "example-news.com", "example-cdn.com",
            "example.co.uk",
        ]
        assert self.index.members_of("missing.net") is None

    def test_interned_domains_are_shared(self):
        variant = self.index.lookup("example.co.uk")
        primary = self.index.lookup("example.com")
        assert variant is not None and primary is not None
        assert variant.set_primary is primary.site


class TestSnapshotStore:
    def test_publish_and_dedup(self):
        store = SnapshotStore()
        first = store.publish(small_list())
        again = store.publish(small_list())
        assert first.version == 1
        assert again is first  # identical content: no new version
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        second = store.publish(grown)
        assert second.version == 2
        assert store.versions() == [1, 2]
        assert second.content_hash != first.content_hash

    def test_unknown_version_is_stale(self):
        store = SnapshotStore()
        with pytest.raises(StaleSnapshotError):
            store.delta(1)
        store.publish(small_list())
        with pytest.raises(StaleSnapshotError):
            store.get(7)
        with pytest.raises(StaleSnapshotError):
            store.delta(0)

    def test_delta_application(self):
        store = SnapshotStore()
        store.publish(small_list())
        grown = small_list()
        grown.sets[0].associated.append("example-mail.com")
        grown.sets[0].rationales["example-mail.com"] = "Webmail brand."
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        target = store.publish(grown)

        delta = store.delta(1)
        assert not delta.is_empty
        assert delta.diff.added_sets == ["new.com"]
        assert "example.com" in delta.diff.changed_sets

        client_copy = small_list()  # a faithful v1 client
        patched = apply_delta(client_copy, delta)
        assert membership_hash(patched) == target.content_hash
        patched_index = MembershipIndex.from_list(patched)
        assert patched_index.related("example-mail.com", "example.co.uk")
        assert patched_index.related("new.com", "new-blog.com")

    def test_stale_client_copy_is_rejected(self):
        store = SnapshotStore()
        store.publish(small_list())
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        store.publish(grown)
        delta = store.delta(1)

        diverged = small_list()
        diverged.sets[1].associated.append("rogue.com")
        with pytest.raises(StaleSnapshotError):
            apply_delta(diverged, delta)

    def test_metadata_only_change_is_not_a_new_version(self):
        # Rationale/contact edits are submitter metadata, not membership:
        # they must neither mint a version nor break the delta protocol.
        store = SnapshotStore()
        first = store.publish(small_list())
        reworded = small_list()
        reworded.sets[0].rationales["example-news.com"] = "New wording."
        reworded.sets[0].contact = "pressdesk@example.com"
        assert store.publish(reworded) is first
        delta = store.delta(1)
        assert delta.is_empty
        patched = apply_delta(small_list(), delta)
        assert membership_hash(patched) == first.content_hash

    def test_empty_delta_round_trips(self):
        store = SnapshotStore()
        store.publish(small_list())
        delta = store.delta(1, 1)
        assert delta.is_empty
        patched = apply_delta(small_list(), delta)
        assert membership_hash(patched) == delta.to_hash


class TestValidationQueue:
    def test_passing_submission(self):
        queue = ValidationQueue(Validator(), workers=2)
        ticket = queue.submit(small_list().sets[0])
        assert queue.drain(timeout=30)
        assert queue.poll(ticket) is SubmissionStatus.PASSED
        report = queue.report(ticket)
        assert report is not None and report.passed
        assert queue.stats.passed == 1
        queue.shutdown()

    def test_failing_submission(self):
        bad = RelatedWebsiteSet(
            primary="example.com",
            associated=["example-news.com"],  # no rationale declared
        )
        queue = ValidationQueue(Validator())
        ticket = queue.submit(bad)
        assert queue.drain(timeout=30)
        assert queue.poll(ticket) is SubmissionStatus.REJECTED
        report = queue.report(ticket)
        assert report is not None and not report.passed
        assert any("rationale" in f.message.lower()
                   for f in report.findings)
        assert queue.stats.rejected == 1
        queue.shutdown()

    def test_batch_statuses_are_per_submission(self):
        queue = ValidationQueue(Validator(), workers=4)
        good = small_list().sets[0]
        bad = RelatedWebsiteSet(primary="lonely.com")  # empty set
        tickets = queue.submit_many([good, bad, good])
        assert queue.drain(timeout=30)
        statuses = [queue.poll(t) for t in tickets]
        assert statuses == [SubmissionStatus.PASSED,
                            SubmissionStatus.REJECTED,
                            SubmissionStatus.PASSED]
        assert queue.stats.completed == 3
        queue.shutdown()

    def test_unknown_ticket(self):
        queue = ValidationQueue(Validator())
        with pytest.raises(KeyError):
            queue.poll("sub-9999")


class TestRwsService:
    def setup_method(self):
        self.service = RwsService(workers=2)
        self.service.publish(small_list())

    def teardown_method(self):
        self.service.queue.shutdown()

    def test_query_resolves_hostnames(self):
        verdict = self.service.query("www.example.com", "example-news.com")
        assert verdict.related
        assert verdict.site_a == "example.com"

    def test_query_unknown_domain(self):
        verdict = self.service.query("stranger.org", "example.com")
        assert not verdict.related
        assert verdict.result is not None
        assert verdict.result.set_primary is None

    def test_query_unresolvable_host(self):
        verdict = self.service.query("com", "example.com")
        assert not verdict.related
        assert verdict.site_a is None
        assert self.service.stats.resolver_errors == 1

    def test_disabled_resolver_cache_still_serves(self):
        service = RwsService(resolver_cache_size=0)
        service.publish(small_list())
        assert service.query("www.example.com", "example-news.com").related
        assert service.query("www.example.com", "example-news.com").related
        assert service.stats.resolver_hits == 0  # nothing is cached
        service.queue.shutdown()

    def test_republish_identical_content_keeps_index(self):
        index_before = self.service.index
        snapshot = self.service.publish(small_list())
        assert snapshot.version == 1
        assert self.service.index is index_before  # no recompile

    def test_republish_recompiles_index(self):
        grown = small_list()
        grown.sets.append(RelatedWebsiteSet(
            primary="new.com", associated=["new-blog.com"],
            rationales={"new-blog.com": "Same publisher."},
        ))
        snapshot = self.service.publish(grown)
        assert snapshot.version == 2
        assert self.service.query("new.com", "new-blog.com").related
        delta = self.service.delta_since(1)
        patched = apply_delta(small_list(), delta)
        assert membership_hash(patched) == snapshot.content_hash

    def test_submission_checked_against_served_list(self):
        # Overlaps with the served list must be rejected...
        overlapping = RelatedWebsiteSet(
            primary="intruder.com",
            associated=["example-news.com"],
            rationales={"example-news.com": "We want this one too."},
        )
        ticket = self.service.submit(overlapping)
        assert self.service.drain(timeout=30)
        assert self.service.poll(ticket) is SubmissionStatus.REJECTED
        report = self.service.queue.report(ticket)
        assert report is not None
        assert any("already belongs" in f.message for f in report.findings)
        # ...while disjoint submissions pass.
        fresh = RelatedWebsiteSet(
            primary="fresh.com",
            associated=["fresh-shop.com"],
            rationales={"fresh-shop.com": "Same operator."},
        )
        ticket = self.service.submit(fresh)
        assert self.service.drain(timeout=30)
        assert self.service.poll(ticket) is SubmissionStatus.PASSED

    def test_stats_report_counters(self):
        self.service.query_batch([
            ("example.com", "example-news.com"),
            ("example.com", "example-news.com"),
            ("other.com", "example.com"),
        ])
        report = self.service.stats_report()
        assert report["queries"] == 3
        assert report["related_hits"] == 2
        assert report["resolver_hits"] > 0  # repeated hosts hit the LRU
        assert report["index_sets"] == 2
        assert report["snapshot_version"] == 2 or report["snapshot_version"] == 1
        assert report["mean_query_ns"] > 0


class TestBrowserUsesIndex:
    def test_engine_grants_via_compiled_index(self):
        browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                          rws_list=small_list())
        browser.visit("example.com")
        page = browser.visit("example.com")
        frame = page.embed("example-news.com")
        decision = browser.request_storage_access(frame)
        assert decision is GrantDecision.GRANTED_RWS
        assert browser.rws_index.related("example.com", "example-news.com")

    def test_refresh_after_list_update(self):
        browser = Browser(policy=BROWSER_POLICIES["chrome-rws"],
                          rws_list=small_list())
        assert not browser.rws_index.related("example.com", "late.com")
        browser.rws_list.sets[0].associated.append("late.com")
        # The compiled index is a snapshot; refresh picks up the change.
        assert not browser.rws_index.related("example.com", "late.com")
        browser.refresh_rws_index()
        assert browser.rws_index.related("example.com", "late.com")