"""Tests for ECDF, the KS test (cross-checked against scipy), and
summary statistics."""

import math
import random

import pytest
import scipy.stats
from hypothesis import given, settings, strategies as st

from repro.stats import (
    Ecdf,
    bootstrap_ci,
    ecdf_points,
    five_number_summary,
    ks_two_sample,
)

SAMPLE = st.lists(st.floats(-100, 100, allow_nan=False), min_size=1,
                  max_size=50)


class TestEcdf:
    def test_step_values(self):
        ecdf = Ecdf.from_sample([1.0, 2.0, 3.0, 4.0])
        assert ecdf(0.5) == 0.0
        assert ecdf(1.0) == 0.25
        assert ecdf(2.5) == 0.5
        assert ecdf(4.0) == 1.0
        assert ecdf(99.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Ecdf.from_sample([])

    def test_median_odd_even(self):
        assert Ecdf.from_sample([3, 1, 2]).median == 2
        assert Ecdf.from_sample([1, 2, 3, 4]).median == 2.5

    def test_quantile_bounds(self):
        ecdf = Ecdf.from_sample([5, 1, 9])
        assert ecdf.quantile(0.0) == 1
        assert ecdf.quantile(1.0) == 9
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    @given(sample=SAMPLE)
    def test_monotone_non_decreasing(self, sample):
        ecdf = Ecdf.from_sample(sample)
        points = sorted(set(sample))
        values = [ecdf(x) for x in points]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_ecdf_points_unique_x(self):
        points = ecdf_points([1, 1, 2, 2, 3])
        assert [x for x, _ in points] == [1, 2, 3]
        assert points[-1][1] == 1.0


class TestKsTest:
    def test_identical_samples_d_zero(self):
        sample = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = ks_two_sample(sample, sample)
        assert result.statistic == 0.0
        assert result.p_value > 0.99

    def test_disjoint_samples_d_one(self):
        result = ks_two_sample([1, 2, 3], [10, 11, 12])
        assert result.statistic == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    def test_detects_clear_shift(self):
        rng = random.Random(0)
        sample_a = [rng.gauss(0, 1) for _ in range(80)]
        sample_b = [rng.gauss(2, 1) for _ in range(80)]
        assert ks_two_sample(sample_a, sample_b).significant()

    def test_same_distribution_not_significant(self):
        rng = random.Random(1)
        sample_a = [rng.gauss(0, 1) for _ in range(80)]
        sample_b = [rng.gauss(0, 1) for _ in range(80)]
        assert not ks_two_sample(sample_a, sample_b).significant()

    @settings(max_examples=30)
    @given(
        a=st.lists(st.floats(-50, 50, allow_nan=False), min_size=5,
                   max_size=40),
        b=st.lists(st.floats(-50, 50, allow_nan=False), min_size=5,
                   max_size=40),
    )
    def test_statistic_matches_scipy(self, a, b):
        ours = ks_two_sample(a, b)
        scipys = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(scipys.statistic, abs=1e-9)

    def test_p_value_close_to_scipy_on_typical_data(self):
        rng = random.Random(7)
        for shift in (0.0, 0.3, 0.8):
            a = [rng.gauss(0, 1) for _ in range(60)]
            b = [rng.gauss(shift, 1) for _ in range(70)]
            ours = ks_two_sample(a, b)
            scipys = scipy.stats.ks_2samp(a, b, method="asymp")
            # Same side of alpha and within a loose numeric band (we use
            # the effective-n continuity correction).
            assert (ours.p_value < 0.05) == (scipys.pvalue < 0.05)
            assert ours.p_value == pytest.approx(scipys.pvalue, abs=0.05)

    def test_symmetry(self):
        a = [1.0, 3.0, 5.0]
        b = [2.0, 2.5, 6.0, 7.0]
        forward = ks_two_sample(a, b)
        backward = ks_two_sample(b, a)
        assert forward.statistic == pytest.approx(backward.statistic)


class TestSummary:
    def test_five_numbers(self):
        summary = five_number_summary([1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert summary.minimum == 1
        assert summary.median == 5
        assert summary.maximum == 9
        assert summary.q1 == 3
        assert summary.q3 == 7

    def test_single_value(self):
        summary = five_number_summary([4.0])
        assert summary.minimum == summary.maximum == summary.median == 4.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            five_number_summary([])

    def test_bootstrap_contains_truth_for_big_sample(self):
        rng = random.Random(3)
        sample = [rng.gauss(10, 2) for _ in range(200)]
        low, high = bootstrap_ci(sample, seed=5)
        assert low < 10.2 and high > 9.8
        assert low < high

    def test_bootstrap_deterministic(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(sample, seed=9) == bootstrap_ci(sample, seed=9)

    def test_bootstrap_validations(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], seed=1)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=2.0)

    def test_bootstrap_other_statistic(self):
        sample = [1.0, 2.0, 100.0]
        low, high = bootstrap_ci(sample, statistic=lambda s: max(s), seed=2)
        assert high == 100.0


def test_kolmogorov_sf_edge_cases():
    from repro.stats.ks import _kolmogorov_sf
    assert _kolmogorov_sf(0.0) == 1.0
    assert _kolmogorov_sf(-1.0) == 1.0
    assert _kolmogorov_sf(5.0) < 1e-10
    assert 0.0 <= _kolmogorov_sf(1.0) <= 1.0
    # Known value: Q(1.36) ~ 0.049 (the classic 5% critical point).
    assert math.isclose(_kolmogorov_sf(1.36), 0.049, abs_tol=0.002)
