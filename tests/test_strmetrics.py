"""Unit + property tests for the string metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.strmetrics import (
    damerau_levenshtein_distance,
    jaccard_index,
    levenshtein_distance,
    levenshtein_ratio,
    levenshtein_within,
    longest_common_subsequence_length,
    overlap_coefficient,
    sequence_similarity,
    shingles,
)

SHORT_TEXT = st.text(alphabet="abcdef", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("abc", "abc", 0),
        ("", "abc", 3),
        ("abc", "", 3),
        ("kitten", "sitting", 3),
        ("flaw", "lawn", 2),
        ("bild", "autobild", 4),
        ("poalim", "poalim", 0),
        ("a", "b", 1),
    ])
    def test_known_values(self, a, b, expected):
        assert levenshtein_distance(a, b) == expected

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_symmetry(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_bounds(self, a, b):
        distance = levenshtein_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(a=SHORT_TEXT, b=SHORT_TEXT, c=SHORT_TEXT)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein_distance(a, c) <= (
            levenshtein_distance(a, b) + levenshtein_distance(b, c)
        )

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_identity_of_indiscernibles(self, a, b):
        assert (levenshtein_distance(a, b) == 0) == (a == b)


class TestLevenshteinWithin:
    @given(a=SHORT_TEXT, b=SHORT_TEXT, limit=st.integers(0, 12))
    def test_agrees_with_exact(self, a, b, limit):
        exact = levenshtein_distance(a, b)
        banded = levenshtein_within(a, b, limit)
        if exact <= limit:
            assert banded == exact
        else:
            assert banded is None

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            levenshtein_within("a", "b", -1)

    def test_zero_limit(self):
        assert levenshtein_within("same", "same", 0) == 0
        assert levenshtein_within("same", "sane", 0) is None


class TestLevenshteinRatio:
    def test_identical(self):
        assert levenshtein_ratio("abc", "abc") == 1.0

    def test_empty_pair(self):
        assert levenshtein_ratio("", "") == 1.0

    def test_disjoint(self):
        assert levenshtein_ratio("aaa", "bbb") == 0.0

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_in_unit_interval(self, a, b):
        assert 0.0 <= levenshtein_ratio(a, b) <= 1.0


class TestDamerau:
    def test_transposition_costs_one(self):
        assert levenshtein_distance("ab", "ba") == 2
        assert damerau_levenshtein_distance("ab", "ba") == 1

    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("abc", "acb", 1),
        ("ca", "abc", 3),   # Optimal-string-alignment value.
        ("kitten", "sitting", 3),
    ])
    def test_known_values(self, a, b, expected):
        assert damerau_levenshtein_distance(a, b) == expected

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein_distance(a, b) <= levenshtein_distance(a, b)

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_symmetry(self, a, b):
        assert (damerau_levenshtein_distance(a, b)
                == damerau_levenshtein_distance(b, a))


class TestLcs:
    @pytest.mark.parametrize("a,b,expected", [
        ("", "", 0),
        ("abc", "abc", 3),
        ("abc", "def", 0),
        ("abcde", "ace", 3),
        ("aggtab", "gxtxayb", 4),
    ])
    def test_known_values(self, a, b, expected):
        assert longest_common_subsequence_length(a, b) == expected

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_bounded_by_shorter(self, a, b):
        lcs = longest_common_subsequence_length(a, b)
        assert 0 <= lcs <= min(len(a), len(b))

    @given(a=SHORT_TEXT)
    def test_self_lcs_is_length(self, a):
        assert longest_common_subsequence_length(a, a) == len(a)

    @given(a=SHORT_TEXT, b=SHORT_TEXT)
    def test_similarity_unit_interval(self, a, b):
        assert 0.0 <= sequence_similarity(a, b) <= 1.0

    def test_similarity_of_empties(self):
        assert sequence_similarity([], []) == 1.0


class TestSetMetrics:
    def test_jaccard_known(self):
        assert jaccard_index({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert jaccard_index(set(), set()) == 1.0
        assert jaccard_index({1}, set()) == 0.0

    def test_overlap_known(self):
        assert overlap_coefficient({1, 2}, {2, 3, 4}) == pytest.approx(0.5)
        assert overlap_coefficient(set(), set()) == 1.0
        assert overlap_coefficient({1}, set()) == 0.0

    @given(a=st.frozensets(st.integers(0, 20)),
           b=st.frozensets(st.integers(0, 20)))
    def test_jaccard_leq_overlap(self, a, b):
        assert jaccard_index(a, b) <= overlap_coefficient(a, b) + 1e-12

    @given(a=st.frozensets(st.integers(0, 20)))
    def test_jaccard_self_is_one(self, a):
        assert jaccard_index(a, a) == 1.0


class TestShingles:
    def test_basic(self):
        assert shingles("abcd", k=2) == {("a", "b"), ("b", "c"), ("c", "d")}

    def test_short_sequence_single_shingle(self):
        assert shingles("ab", k=4) == {("a", "b")}

    def test_empty(self):
        assert shingles("", k=3) == set()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            shingles("abc", k=0)

    @given(items=st.lists(st.integers(0, 5), max_size=20),
           k=st.integers(1, 6))
    def test_count_bound(self, items, k):
        result = shingles(items, k=k)
        if not items:
            assert result == set()
        elif len(items) < k:
            assert result == {tuple(items)}
        else:
            assert len(result) <= len(items) - k + 1
