"""Tests for the survey: design, instrument, respondent, full run."""

import pytest

from repro.survey import (
    PairGroup,
    RespondentModel,
    SiteObservation,
    build_pair_universe,
    build_questionnaire,
    confusion_matrix,
    factor_table,
    participants_with_errors,
    table1_summary,
    timing_split_same_set,
)
from repro.survey.analysis import pairwise_category_ks
from repro.survey.design import PAPER_PAIR_COUNTS
from repro.survey.instrument import (
    FACTOR_RESPONDENTS,
    TABLE2_COUNTS,
    Factor,
    factor_answers_for,
)
from repro.html.extract import extract_features


@pytest.fixture(scope="module")
def universe(category_db):
    return build_pair_universe(category_db)


# category_db is session-scoped in conftest; re-export for module scope.
@pytest.fixture(scope="module")
def category_db():
    from repro.data import build_category_database
    return build_category_database()


class TestPairUniverse:
    def test_exact_group_counts(self, universe):
        for group, pairs in universe.items():
            assert len(pairs) == PAPER_PAIR_COUNTS[group.name], group

    def test_total_822_pairs(self, universe):
        assert sum(len(pairs) for pairs in universe.values()) == 822

    def test_same_set_pairs_are_rws_related(self, universe, rws_list):
        for pair in universe[PairGroup.RWS_SAME_SET]:
            assert pair.rws_related
            assert rws_list.related(pair.site_a, pair.site_b)

    def test_other_groups_not_rws_related(self, universe, rws_list):
        for group in (PairGroup.RWS_OTHER_SET, PairGroup.TOP_SAME_CATEGORY,
                      PairGroup.TOP_OTHER_CATEGORY):
            for pair in universe[group]:
                assert not pair.rws_related
                assert not rws_list.related(pair.site_a, pair.site_b)

    def test_same_category_pairs_share_category(self, universe, category_db):
        for pair in universe[PairGroup.TOP_SAME_CATEGORY]:
            assert category_db.same_category(pair.site_a, pair.site_b)

    def test_other_category_pairs_differ(self, universe, category_db):
        for pair in universe[PairGroup.TOP_OTHER_CATEGORY]:
            assert not category_db.same_category(pair.site_a, pair.site_b)

    def test_deterministic(self, category_db):
        first = build_pair_universe(category_db)
        second = build_pair_universe(category_db)
        assert first == second

    @pytest.fixture()
    def rws_list(self):
        from repro.data import build_rws_list
        return build_rws_list()


class TestQuestionnaire:
    def test_20_questions_5_per_group(self, universe):
        questionnaire = build_questionnaire(1, universe, seed=9)
        assert len(questionnaire) == 20
        per_group = {group: 0 for group in PairGroup}
        for question in questionnaire.questions:
            per_group[question.pair.group] += 1
        assert all(count == 5 for count in per_group.values())

    def test_different_participants_differ(self, universe):
        first = build_questionnaire(1, universe, seed=9)
        second = build_questionnaire(2, universe, seed=9)
        assert [q.pair for q in first.questions] != \
            [q.pair for q in second.questions]

    def test_same_participant_is_stable(self, universe):
        first = build_questionnaire(5, universe, seed=9)
        second = build_questionnaire(5, universe, seed=9)
        assert [q.pair for q in first.questions] == \
            [q.pair for q in second.questions]


class TestFactorInstrument:
    def test_marginals_reproduce_table2_exactly(self):
        related_counts = {factor: 0 for factor in Factor}
        unrelated_counts = {factor: 0 for factor in Factor}
        for index in range(FACTOR_RESPONDENTS):
            answers = factor_answers_for(index)
            for factor, (related, unrelated) in answers.items():
                related_counts[factor] += related
                unrelated_counts[factor] += unrelated
        for factor, (expected_related, expected_unrelated) in \
                TABLE2_COUNTS.items():
            assert related_counts[factor] == expected_related, factor
            assert unrelated_counts[factor] == expected_unrelated, factor

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            factor_answers_for(21)


def observation(domain: str, html: str,
                about: str | None = None) -> SiteObservation:
    return SiteObservation(
        domain=domain,
        home=extract_features(html),
        about=extract_features(about) if about else None,
    )


class TestRespondentEvidence:
    def make_pair(self, a: str, b: str):
        from repro.survey.design import SitePair
        return SitePair(a, b, PairGroup.RWS_SAME_SET, rws_related=True)

    def test_common_org_detected_from_footers(self):
        model = RespondentModel(participant_id=1, seed=1)
        obs_a = observation(
            "a.com", "<footer><p>© 2024 Mega Corp. All rights.</p></footer>")
        obs_b = observation(
            "b.com",
            "<footer><p>© 2024 B Site. Part of the Mega Corp family.</p>"
            "</footer>")
        evidence = model.evidence_for(self.make_pair("a.com", "b.com"),
                                      obs_a, obs_b)
        assert evidence["common_organization"] == 1.0

    def test_no_cues_for_unrelated_pages(self):
        model = RespondentModel(participant_id=1, seed=1)
        obs_a = observation("alpha.com",
                            "<footer><p>© 2024 Alpha.</p></footer>")
        obs_b = observation("omega.net",
                            "<footer><p>© 2024 Omega.</p></footer>")
        evidence = model.evidence_for(self.make_pair("alpha.com", "omega.net"),
                                      obs_a, obs_b)
        assert evidence["common_organization"] == 0.0
        assert evidence["domain_similarity"] == 0.0
        assert evidence["shared_domain_token"] == 0.0

    def test_domain_similarity_cue(self):
        model = RespondentModel(participant_id=1, seed=1)
        obs_a = observation("novapress.com", "<p>x</p>")
        obs_b = observation("novapress.net", "<p>y</p>")
        evidence = model.evidence_for(
            self.make_pair("novapress.com", "novapress.net"), obs_a, obs_b)
        assert evidence["domain_similarity"] == 1.0
        assert evidence["shared_domain_token"] == 1.0

    def test_about_page_mention_cue(self):
        model = RespondentModel(participant_id=1, seed=1)
        obs_a = observation("parent.com", "<p>plain</p>")
        obs_b = observation(
            "child.com", "<p>plain</p>",
            about="<p>Child is part of Parent Corp, which also operates "
                  "Parent (parent.com).</p>")
        evidence = model.evidence_for(self.make_pair("parent.com", "child.com"),
                                      obs_a, obs_b)
        assert evidence["domain_mention"] == 1.0

    def test_decisions_deterministic_per_participant(self):
        obs_a = observation("a.com", "<p>x</p>")
        obs_b = observation("b.com", "<p>y</p>")
        pair = self.make_pair("a.com", "b.com")
        first = RespondentModel(participant_id=3, seed=7).decide(
            pair, obs_a, obs_b)
        second = RespondentModel(participant_id=3, seed=7).decide(
            pair, obs_a, obs_b)
        assert first.related == second.related
        assert first.seconds == second.seconds

    def test_time_positive(self):
        obs = observation("a.com", "<p>x</p>")
        verdict = RespondentModel(participant_id=1, seed=1).decide(
            self.make_pair("a.com", "a.com"), obs, obs)
        assert verdict.seconds > 0


class TestStudyOutcomes:
    """The full study reproduces §3's findings (fixed default seed)."""

    def test_response_volume(self, study_dataset):
        assert 400 <= len(study_dataset.responses) <= 460  # Paper: 430.
        assert len(study_dataset.participants()) == 30

    def test_confusion_matrix_close_to_figure1(self, study_dataset):
        matrix = confusion_matrix(study_dataset)
        assert abs(100 * matrix.privacy_harming_fraction - 36.8) < 5.0
        assert abs(100 * matrix.unrelated_correct_fraction - 93.7) < 3.0

    def test_majority_of_participants_err(self, study_dataset):
        _, _, fraction = participants_with_errors(study_dataset)
        assert abs(100 * fraction - 73.3) < 10.0

    def test_table1_shape(self, study_dataset):
        rows = {row.group: row for row in table1_summary(study_dataset)}
        same_set = rows[PairGroup.RWS_SAME_SET]
        # Most same-set answers are "related"; almost none elsewhere.
        assert same_set.related_count > same_set.unrelated_count
        for group in (PairGroup.RWS_OTHER_SET, PairGroup.TOP_SAME_CATEGORY,
                      PairGroup.TOP_OTHER_CATEGORY):
            assert rows[group].unrelated_count > 5 * rows[group].related_count

    def test_unrelated_conclusions_take_longer(self, study_dataset):
        related, unrelated, ks = timing_split_same_set(study_dataset)
        import statistics
        assert statistics.mean(unrelated) > statistics.mean(related)
        assert ks.significant()  # Figure 2's finding.

    def test_cross_category_timing_not_significant(self, study_dataset):
        results = pairwise_category_ks(study_dataset)
        assert len(results) == 6
        assert not any(result.significant() for result in results.values())

    def test_factor_table_matches_paper(self, study_dataset):
        table = factor_table(study_dataset)
        assert table[Factor.BRANDING][2] == pytest.approx(66.7, abs=0.1)
        assert table[Factor.DOMAIN_NAME][2] == pytest.approx(57.1, abs=0.1)
        assert len(study_dataset.factor_responses) == 21

    def test_rows_export_shape(self, study_dataset):
        rows = study_dataset.to_rows()
        assert len(rows) == len(study_dataset.responses)
        first = rows[0]
        assert set(first) == {"participant", "question", "group", "site_a",
                              "site_b", "rws_related", "answered_related",
                              "seconds"}

    def test_study_deterministic(self, study_dataset):
        from repro.survey import conduct_study
        again = conduct_study()
        assert len(again.responses) == len(study_dataset.responses)
        assert confusion_matrix(again) == confusion_matrix(study_dataset)
