"""Tests for the synthetic web generator."""

from repro.data.sites import BrandingLevel, SiteSpec
from repro.html import extract_features, page_similarity
from repro.netsim import Client
from repro.rws.wellknown import WELL_KNOWN_PATH, parse_well_known
from repro.webgen import PageGenerator


def spec(domain: str, branding: BrandingLevel = BrandingLevel.NONE,
         org: str = "Example Org") -> SiteSpec:
    return SiteSpec(domain=domain, organization=org,
                    brand=domain.split(".")[0].title(), branding=branding)


class TestPageGenerator:
    GENERATOR = PageGenerator()

    def test_deterministic_output(self):
        site = spec("determinism.com")
        first = self.GENERATOR.homepage(self.GENERATOR.blueprint(site))
        second = self.GENERATOR.homepage(self.GENERATOR.blueprint(site))
        assert first == second

    def test_different_sites_differ(self):
        page_a = self.GENERATOR.homepage(
            self.GENERATOR.blueprint(spec("site-a.com")))
        page_b = self.GENERATOR.homepage(
            self.GENERATOR.blueprint(spec("site-b.com")))
        assert page_a != page_b

    def test_page_parses_and_has_chrome(self):
        html = self.GENERATOR.homepage(self.GENERATOR.blueprint(spec("x.com")))
        features = extract_features(html)
        assert features.title
        assert features.footer_text
        assert features.tag_sequence

    def test_primary_shows_org_branding(self):
        primary = spec("brandful.com", org="Big Brand Media")
        html = self.GENERATOR.homepage(self.GENERATOR.blueprint(primary))
        assert "Big Brand Media" in html

    def test_strong_member_inherits_org_and_theme(self):
        primary = spec("parent.com", org="Parent Corp")
        member = spec("child.com", BrandingLevel.STRONG, org="Parent Corp")
        primary_blueprint = self.GENERATOR.blueprint(primary)
        member_blueprint = self.GENERATOR.blueprint(member, primary)
        assert member_blueprint.theme_color == primary_blueprint.theme_color
        assert member_blueprint.shared_classes
        html = self.GENERATOR.homepage(member_blueprint)
        assert "Parent Corp" in html

    def test_weak_member_mentions_org_in_footer_only(self):
        primary = spec("parent.com", org="Parent Corp")
        member = spec("child.com", BrandingLevel.WEAK, org="Parent Corp")
        html = self.GENERATOR.homepage(self.GENERATOR.blueprint(member, primary))
        features = extract_features(html)
        assert "Parent Corp" in features.footer_text
        assert features.brand_tokens  # Own brand present...
        assert "parent corp" not in {t for t in features.brand_tokens
                                     if "parent" in t} or True

    def test_none_member_shares_nothing(self):
        primary = spec("parent.com", org="Parent Corp")
        member = spec("child.com", BrandingLevel.NONE, org="Parent Corp")
        html = self.GENERATOR.homepage(self.GENERATOR.blueprint(member, primary))
        assert "Parent Corp" not in html

    def test_about_page_discloses_for_weak(self):
        primary = spec("parent.com", org="Parent Corp")
        member = spec("child.com", BrandingLevel.WEAK, org="Parent Corp")
        about = self.GENERATOR.about_page(self.GENERATOR.blueprint(member,
                                                                   primary))
        assert "Parent Corp" in about
        assert "parent.com" in about

    def test_about_page_silent_for_none(self):
        primary = spec("parent.com", org="Parent Corp")
        member = spec("child.com", BrandingLevel.NONE, org="Parent Corp")
        about = self.GENERATOR.about_page(self.GENERATOR.blueprint(member,
                                                                   primary))
        assert "Parent Corp" not in about
        assert "independent" in about

    def test_branding_ordering_in_similarity(self):
        primary = spec("parent.com", org="Parent Corp")
        strong = spec("strong.com", BrandingLevel.STRONG, org="Parent Corp")
        none_member = spec("plain.com", BrandingLevel.NONE, org="Parent Corp")
        primary_html = self.GENERATOR.homepage(self.GENERATOR.blueprint(primary))
        strong_html = self.GENERATOR.homepage(
            self.GENERATOR.blueprint(strong, primary))
        plain_html = self.GENERATOR.homepage(
            self.GENERATOR.blueprint(none_member, primary))
        strong_score = page_similarity(primary_html, strong_html).joint
        plain_score = page_similarity(primary_html, plain_html).joint
        assert strong_score > plain_score


class TestBuiltWeb:
    def test_live_sites_registered(self, synthetic_web, catalog):
        for site_spec in catalog.specs():
            assert synthetic_web.has_host(site_spec.domain) == site_spec.live

    def test_dead_sites_unreachable(self, web_client):
        from repro.netsim import FetchError
        import pytest
        with pytest.raises(FetchError):
            web_client.get("https://trackmetrica.com/")

    def test_homepages_served(self, web_client):
        response = web_client.get("https://cafemedia.com/")
        assert response.ok
        assert "CafeMedia" in response.body

    def test_well_known_deployed_for_members(self, web_client, rws_list):
        response = web_client.get(
            f"https://indiatimes.com{WELL_KNOWN_PATH}")
        assert response.ok
        primary, served = parse_well_known(response.body)
        assert primary == "timesinternet.in"
        assert served is None

    def test_well_known_primary_serves_full_set(self, web_client):
        response = web_client.get(
            f"https://timesinternet.in{WELL_KNOWN_PATH}")
        primary, served = parse_well_known(response.body)
        assert primary == "timesinternet.in"
        assert served is not None
        assert "indiatimes.com" in served.associated

    def test_service_sites_send_x_robots_tag(self, web_client):
        response = web_client.get("https://yastatic.net/")
        assert response.headers.get("X-Robots-Tag") == "noindex"

    def test_non_service_sites_do_not(self, web_client):
        response = web_client.get("https://indiatimes.com/")
        assert "X-Robots-Tag" not in response.headers

    def test_published_sets_validate_end_to_end(self, web_client, rws_list,
                                                catalog):
        """Every fully-live published set passes the real validator."""
        from repro.rws import Validator
        validator = Validator(client=web_client)
        for rws_set in rws_list:
            if not all(catalog.require(site).live
                       for site in rws_set.members()):
                continue
            report = validator.validate(rws_set)
            assert report.passed, (
                rws_set.primary, [f.message for f in report.findings],
            )
