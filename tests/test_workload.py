"""Tests for the workload engine (repro.workload)."""

import pytest

from repro.cli import main
from repro.data import build_rws_list
from repro.workload import (
    LIST_PROFILES,
    SCENARIOS,
    LatencyHistogram,
    SessionGenerator,
    SiteUniverse,
    WorkloadMetrics,
    ZipfSampler,
    combine_digests,
    get_scenario,
    replicated,
    run_serial,
    run_sharded,
    run_workload,
)
from repro.workload.driver import _partition

import random


def _universe(scenario):
    build_v1, _ = LIST_PROFILES[scenario.list_profile]
    return SiteUniverse(build_v1(), trackers=scenario.trackers,
                        outside_sites=scenario.outside_sites)


class TestGeneratorDeterminism:
    def test_same_seed_same_stream(self):
        scenario = get_scenario("steady")
        universe = _universe(scenario)
        first = list(SessionGenerator(scenario, 7, universe).sessions(range(50)))
        second = list(SessionGenerator(scenario, 7, universe).sessions(range(50)))
        assert first == second

    def test_stream_is_per_user_not_per_position(self):
        # Shard-invariance rests on this: user 37's session must not
        # depend on which other users the generator produced first.
        scenario = get_scenario("steady")
        universe = _universe(scenario)
        generator = SessionGenerator(scenario, 7, universe)
        alone = generator.session(37)
        in_order = list(generator.sessions(range(40)))[37]
        reversed_order = list(generator.sessions(reversed(range(40))))[2]
        assert alone == in_order == reversed_order

    def test_different_seed_different_stream(self):
        scenario = get_scenario("steady")
        universe = _universe(scenario)
        first = list(SessionGenerator(scenario, 1, universe).sessions(range(20)))
        second = list(SessionGenerator(scenario, 2, universe).sessions(range(20)))
        assert first != second

    def test_universe_is_deterministic(self):
        rws_list = build_rws_list()
        one = SiteUniverse(rws_list, trackers=10, outside_sites=10)
        two = SiteUniverse(build_rws_list(), trackers=10, outside_sites=10)
        assert one.member_sites == two.member_sites
        assert one.service_sites == two.service_sites

    def test_zipf_sampler_skews_to_head(self):
        sampler = ZipfSampler([f"site-{i}" for i in range(100)], 1.5)
        rng = random.Random(42)
        draws = [sampler.sample(rng) for _ in range(2000)]
        head = sum(1 for d in draws if d in ("site-0", "site-1", "site-2"))
        tail = sum(1 for d in draws if d == "site-99")
        assert head > 2000 * 0.3
        assert tail < head

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([], 1.0)


class TestDigestInvariance:
    def test_digest_identical_across_shard_counts_and_paths(self):
        serial = run_serial("steady", 120, seed=11)
        for shards in (2, 3, 5):
            sharded = run_sharded("steady", 120, shards, seed=11,
                                  executor="inline")
            assert sharded.digest == serial.digest
            assert sharded.decisions == serial.decisions
            assert (sharded.metrics.counters["rsa_granted"]
                    == serial.metrics.counters["rsa_granted"])

    def test_digest_identical_with_thread_executor(self):
        serial = run_serial("bulk", 80, seed=5)
        threaded = run_sharded("bulk", 80, 4, seed=5, executor="thread")
        assert threaded.digest == serial.digest

    def test_digest_differs_across_seeds(self):
        assert (run_serial("steady", 40, seed=1).digest
                != run_serial("steady", 40, seed=2).digest)

    def test_mid_flight_update_stays_shard_invariant(self):
        # The update keys off the global user index, so splitting the
        # run across shards must not move any user across the cutoff.
        serial = run_serial("list-update", 60, seed=4)
        sharded = run_sharded("list-update", 60, 4, seed=4,
                              executor="inline")
        assert serial.digest == sharded.digest
        assert serial.snapshot_version == sharded.snapshot_version == 2
        assert serial.metrics.counters["delta_applied"] >= 1
        # Every shard at/above the cutoff re-publishes and re-verifies.
        assert sharded.metrics.counters["delta_applied"] >= 1


class TestReplicatedExecution:
    def test_lag_zero_digest_matches_single_service(self):
        # The acceptance gate: replicated execution at lag 0 is
        # bit-identical to single-service execution.
        for name in ("steady", "bulk", "list-update"):
            single = run_serial(name, 60, seed=11)
            for policy in ("rendezvous", "round-robin"):
                rep = run_serial(replicated(name, 3, lag=0, policy=policy),
                                 60, seed=11)
                assert rep.digest == single.digest, (name, policy)
            sharded = run_sharded(replicated(name, 3, lag=0), 60, 3,
                                  seed=11, executor="inline")
            assert sharded.digest == single.digest, name

    def test_stale_replica_digest_is_deterministic(self):
        # The stale-replica scenario's digest must be stable across
        # runs, shard counts, and executors — for any seed, which
        # rests on the router keying raw-host and pre-resolved
        # traffic identically (the two driver paths dispatch the same
        # logical query in different shapes).
        for seed in (1, 4, 9):
            serial = run_serial("stale-replica", 60, seed=seed)
            again = run_serial("stale-replica", 60, seed=seed)
            assert serial.digest == again.digest, seed
            for shards in (2, 3, 5):
                sharded = run_sharded("stale-replica", 60, shards,
                                      seed=seed, executor="inline")
                assert sharded.digest == serial.digest, (seed, shards)
            assert serial.snapshot_version == 2
            assert serial.metrics.counters["replica_catch_ups"] >= 1
        threaded = run_sharded("stale-replica", 60, 4, seed=4,
                               executor="thread")
        assert threaded.digest == run_serial("stale-replica", 60,
                                             seed=4).digest

    def test_stale_replica_lag_is_observable_in_the_digest(self):
        # Same traffic with lag forced to 0: every replica converges at
        # the cutoff, so stale reads disappear and the digest moves —
        # convergence is an outcome, not just a counter.
        lagged = run_serial("stale-replica", 60, seed=4)
        converged = run_serial(replicated("stale-replica", 3, lag=0),
                               60, seed=4)
        assert lagged.digest != converged.digest
        # Stale replicas keep answering "related" for the taken-down
        # conglomerate set, so the lagged run sees at least as many
        # related hits.
        assert (lagged.metrics.counters["related_hits"]
                >= converged.metrics.counters["related_hits"])

    def test_replicated_helper_round_trips(self):
        scenario = replicated("steady", 2, lag=3, policy="round-robin")
        assert scenario.replicas == 2
        assert scenario.replica_lag == 3
        assert scenario.router_policy == "round-robin"
        assert replicated(scenario, 0).replicas == 0


class TestScenarios:
    def test_registry_names_match_entries(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name
            assert scenario.description
            assert scenario.list_profile in LIST_PROFILES

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="steady"):
            get_scenario("no-such-scenario")

    def test_every_scenario_runs(self):
        for name in SCENARIOS:
            result = run_workload(name, 30, seed=2)
            assert result.decisions > 0
            assert result.metrics.counters["queries"] > 0

    def test_abusive_scenario_denies_probes(self):
        result = run_serial("abusive", 150, seed=8)
        counters = result.metrics.counters
        assert counters["rsa_denied"] > counters["rsa_granted"]

    def test_takedown_flips_decisions_after_update(self):
        # Same traffic, but the abusive set is removed halfway: the
        # post-update half must grant strictly less than a run where
        # the set stays published throughout.
        kept = run_serial("abusive", 200, seed=6)
        takedown = run_serial("takedown", 200, seed=6)
        assert takedown.snapshot_version == 2
        assert (takedown.metrics.counters["rsa_granted"]
                < kept.metrics.counters["rsa_granted"])

    def test_cache_scenarios_bracket_resolver_behaviour(self):
        cold = run_serial("cold-cache", 60, seed=3)
        warm = run_serial("warm-cache", 60, seed=3)
        assert cold.metrics.counters.get("resolver_hits", 0) == 0
        assert warm.metrics.counters["warmup_resolutions"] > 0
        assert warm.metrics.counters["resolver_hits"] > 0

    def test_cold_cache_honoured_on_sharded_path(self):
        # The fast path's shard-local resolver must respect the
        # cold-cache knob too, not just the service's LRU.
        cold = run_sharded("cold-cache", 60, 2, seed=3, executor="inline")
        assert cold.metrics.counters.get("resolver_hits", 0) == 0
        assert cold.metrics.counters["resolver_misses"] > 0
        assert cold.digest == run_serial("cold-cache", 60, seed=3).digest

    def test_single_task_run_reports_inline_executor(self):
        result = run_sharded("steady", 1, 4, seed=1, executor="process")
        assert result.executor == "inline"  # no pool actually ran


class TestMetrics:
    def test_histogram_percentiles(self):
        histogram = LatencyHistogram()
        for ns in [100] * 90 + [10_000] * 9 + [1_000_000]:
            histogram.record(ns)
        assert histogram.total == 100
        assert histogram.percentile(0.5) < 1_000
        assert 1_000 < histogram.percentile(0.95) < 100_000
        assert histogram.percentile(0.999) > 100_000

    def test_histogram_merge_equals_union(self):
        left, right, union = (LatencyHistogram() for _ in range(3))
        for i, ns in enumerate([50, 400, 3_000, 25_000, 900_000] * 20):
            (left if i % 2 else right).record(ns)
            union.record(ns)
        left.merge(right)
        assert left.counts == union.counts
        assert left.percentile(0.95) == union.percentile(0.95)

    def test_histogram_empty_and_bounds(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.5) == 0.0
        histogram.record(0)
        histogram.record(2 ** 80)  # clamps to the top bucket
        assert histogram.total == 2
        with pytest.raises(ValueError):
            histogram.percentile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram([1, 2, 3])

    def test_metrics_merge_and_portability(self):
        one = WorkloadMetrics()
        one.count("queries", 5)
        one.record_latency("query", 1_000)
        two = WorkloadMetrics()
        two.count("queries", 7)
        two.count("rsa_calls", 2)
        two.record_latency("query", 2_000)
        one.merge(WorkloadMetrics.from_portable(two.to_portable()))
        assert one.counters["queries"] == 12
        assert one.decisions == 14
        assert one.histograms["query"].total == 2

    def test_combine_digests_is_order_independent(self):
        digests = [3, 1 << 200, 17]
        assert combine_digests(digests) == combine_digests(digests[::-1])


class TestDriver:
    def test_partition_covers_all_users_contiguously(self):
        for users, shards in [(10, 3), (3, 5), (0, 4), (100, 1)]:
            bounds = _partition(users, shards)
            covered = [u for start, end in bounds for u in range(start, end)]
            assert covered == list(range(users))
            assert all(end > start for start, end in bounds)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_sharded("steady", 10, 0)
        with pytest.raises(ValueError):
            run_sharded("steady", 10, 2, executor="carrier-pigeon")

    def test_zero_users(self):
        result = run_workload("steady", 0, shards=3, executor="inline")
        assert result.decisions == 0
        assert result.digest == 0

    def test_report_lines_render(self):
        result = run_serial("steady", 25, seed=1)
        text = "\n".join(result.report_lines())
        assert "digest" in text and "decisions/sec" in text
        assert result.digest_hex in text


class TestCliLoad:
    def test_load_prints_reproducible_summary(self, capsys):
        argv = ["load", "--scenario", "steady", "--users", "80",
                "--shards", "2", "--seed", "7", "--executor", "inline"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        # Everything up to the throughput line is bit-reproducible.
        deterministic = [line for line in first.splitlines()
                         if not line.startswith(("throughput", "latency"))]
        assert deterministic == [line for line in second.splitlines()
                                 if not line.startswith(("throughput",
                                                         "latency"))]
        assert "digest" in first

    def test_load_replica_flags_preserve_scenario_settings(self, capsys):
        # --replicas alone must not clobber the scenario's own lag and
        # policy: the stale-replica digest (staggered lag observable)
        # must match the flagless run when only the default replica
        # count is restated.
        base = ["load", "--scenario", "stale-replica", "--users", "60",
                "--seed", "4", "--executor", "inline"]
        assert main(base) == 0
        flagless = capsys.readouterr().out
        assert main(base + ["--replicas", "3"]) == 0
        restated = capsys.readouterr().out
        digest = [line for line in flagless.splitlines()
                  if line.startswith("digest")]
        assert digest == [line for line in restated.splitlines()
                          if line.startswith("digest")]

    def test_load_rejects_unknown_scenario(self, capsys):
        assert main(["load", "--scenario", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_load_lists_scenarios(self, capsys):
        assert main(["load", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS:
            assert name in out
